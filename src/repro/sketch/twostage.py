"""Two-stage candidate generation: sketch recall, then exact rerank.

Stage 1 judges every retrieved candidate against the query using only
its sketch row (distinct label-id sets + minhash signature); stage 2
is the unchanged exact λ/ψ scorer over whatever survives.  Two modes:

**safe** — prunes only candidates *provably* outside the kept cluster,
so rankings stay bit-identical to exhaustive scoring.  Three exact
facts about :func:`repro.index.columnar.score_pairs` make that work:

- *Trim survival is decidable from the sketch.*  A sink-anchored
  candidate survives the §4.3 trim iff some stored node matches the
  anchor, i.e. iff its node-id set intersects the anchor's match set
  (interning is injective and the id matcher is the label matcher).
  Trim-dropped candidates are pruned for free.
- *A lower bound λ ≥ LB.*  The scan's indel counts are exact, not
  bounded: insertions are exactly ``max(0, plen - qlen)`` data
  (edge, node) pairs and deletions exactly ``max(0, qlen - plen)``
  query pairs, so those weighted terms are guaranteed λ components.
  The scan is also positionally rigid — it walks both sequences
  backward from the sink 1:1 (insertions skip *data* pairs only), so
  the query occurrence at sink-distance ``s`` is compared iff
  ``plen > s`` and deleted otherwise.  A *compared* constant
  occurrence whose match set misses the candidate's full id set
  therefore adds a full mismatch weight on top of the indel terms
  (deleted occurrences add nothing more — their cost is already
  inside the blanket delete term) — decidable per candidate from its
  stored length.
- *An upper bound λ ≤ UB.*  Aligned node comparisons never exceed
  ``min(plen, qlen)`` (edges likewise) and the indel terms are the
  same exact counts, so ``UB(plen)`` caps λ; it is piecewise linear
  in ``plen``, so over the trim range ``[1, stored]`` it is maximised
  at an endpoint — ``max(UB(1), UB(stored))`` for anchored
  candidates.  Anchored candidates score an unknown trimmed prefix,
  so their LB conservatively degrades to the trim-invariant part:
  each disjoint constant is compared or deleted whatever the trim
  keeps, costing at least ``min(mismatch, deletion)``.

The cluster keeps the ``max_cluster_size`` smallest scores.  With
``T`` = the limit-th smallest UB among trim survivors, any candidate
with ``LB > T`` has λ strictly above the λ of at least ``limit``
others (each λ_i ≤ UB_i ≤ T), so it cannot make the truncated cluster
— even on ties, because the cut is strict.  Survivor counts at or
under the limit prune nothing (no truncation ⇒ everything is kept).
Candidates without a sketch row (quarantined / stale / missing shard
sketch) pass through with UB = ∞, which only raises ``T`` — always
conservative.  Safe mode is proven bit-identical under random
workloads in ``tests/test_sketch.py`` and on the LUBM workload by
``benchmarks/bench_twostage.py``.

**approximate** — also drops candidates that merely *look* far.  The
recall target buys a keep budget ``K`` (160 at the default 0.95,
doubling every time the allowed miss rate halves, degenerating to
keep-everything at target 1.0); candidates are ranked by ``(LB,
gid)`` — the same ascending-gid order the exact scorer uses to break
cost ties, so within a tied LB stratum the survivors are exactly the
candidates the exhaustive tie-break would promote — and cut at the
budget.  Beyond-budget candidates are rescued when the LSH bucket
index reports a band collision with the query's signature (their
labels look like the query's beyond what the bounds see).  Candidate
sets at or under the budget pass untouched.  Recall is measured, not
promised — ``bench_twostage.py`` gates it ≥ the target.

One caveat the docs repeat: pruning removes candidates *before* budget
charging, so degradation-budget accounting differs from exhaustive
runs.  Bit-identity claims are for unbudgeted queries.
"""

from __future__ import annotations

import math

from ..index.columnar import make_id_matcher
from ..paths.alignment import exact_match
from ..rdf.terms import Variable
from .minhash import coefficients, signature
from .store import load_sketches

#: Approximate mode's keep budget at the default 0.95 recall target,
#: and its floor at looser targets: never fewer than this many
#: candidates survive (when that many were retrieved) — a
#: deterministic starvation guard well above any sane top-k.
APPROX_MIN_KEEP = 32

_MODES = ("off", "safe", "approx")

#: Per-class verdict for a refined class whose sketch row proved the
#: anchor trim drops it — every member is dropped without another set
#: intersection.  Local sentinel (not ``repro.quotient.DROPPED``) so
#: the sketch package never imports the quotient package, which itself
#: builds on ``repro.sketch.store``.
_CLASS_DROPPED = object()


def validate_mode(mode: str) -> str:
    if mode not in _MODES:
        raise ValueError(
            f"two_stage must be one of {_MODES}, got {mode!r}")
    return mode


class SketchIndex:
    """Gid-space view over per-shard sketches (``None`` holes allowed)."""

    __slots__ = ("sketches", "_locate", "params", "_coeffs")

    def __init__(self, sketches, locate):
        self.sketches = sketches
        self._locate = locate
        loaded = [sketch for sketch in sketches if sketch is not None]
        self.params = loaded[0].params
        self._coeffs = coefficients(self.params)

    @classmethod
    def for_index(cls, index) -> "SketchIndex | None":
        """Load the persisted sketches of ``index``; ``None`` when no
        shard has a usable one (absent, stale epoch, corrupt)."""
        sketches = load_sketches(index)
        if sketches is None:
            return None
        locate = getattr(index, "locate", None)
        if locate is None:
            locate = lambda gid: (0, gid)
        return cls(sketches, locate)

    def lookup(self, gid: int):
        """``(shard sketch, row)`` for ``gid``, or ``None`` when its
        shard has no sketch (→ the filter passes it through)."""
        shard_no, offset = self._locate(gid)
        sketch = self.sketches[shard_no]
        if sketch is None:
            return None
        row = sketch.row_of.get(offset)
        if row is None:
            return None
        return sketch, row

    def query_signature(self, ids):
        return signature(ids, self._coeffs)


class TwoStageFilter:
    """The stage-1 candidate judge wired into ``build_clusters``.

    Callable as ``filter(query_path, gids, trim_to_anchor, anchor)``
    returning the surviving gids in ascending order.  One instance
    serves every query of an engine: the per-constant match sets (all
    data label ids the matcher accepts for a query constant) are
    memoised across queries, like :func:`make_id_matcher`'s verdicts.
    """

    def __init__(self, index, sketch_index: SketchIndex, matcher, weights,
                 mode: str, max_cluster_size: "int | None",
                 recall_target: float = 0.95, quotient=None):
        #: Optional :class:`repro.quotient.resolve.QuotientResolver`:
        #: candidates sharing a refine key provably receive identical
        #: ``(LB, UB)`` verdicts (the disjointness of a slot filler
        #: against a constant's match set is exactly that constant's
        #: membership in the slot's refine feature, and the stored
        #: length is fixed by the class pattern), so the filter judges
        #: one member per class and reuses the verdict.  The kept gid
        #: list is unchanged — only the set intersections are skipped.
        self.quotient = quotient
        self.sketches = sketch_index
        self.mode = validate_mode(mode)
        self.limit = max_cluster_size
        self.recall_target = min(max(recall_target, 0.0), 1.0)
        self.weights = weights
        interner = index.interner
        self._intern = interner.intern
        #: Data labels all carry ids below this; ids interned later
        #: belong to query-only constants and match no stored path.
        self._data_vocab = len(interner)
        self._exact = matcher is exact_match
        self._ids_match = (None if self._exact
                           else make_id_matcher(interner, matcher))
        self._match_ids: "dict[int, frozenset]" = {}

    def match_set(self, query_id: int) -> frozenset:
        """All data label ids the matcher accepts for ``query_id``."""
        found = self._match_ids.get(query_id)
        if found is None:
            if self._exact:
                found = frozenset((query_id,))
            else:
                ids_match = self._ids_match
                found = frozenset(
                    data_id for data_id in range(self._data_vocab)
                    if ids_match(data_id, query_id))
            self._match_ids[query_id] = found
        return found

    def _occurrence_checks(self, query_path):
        """One ``(min_plen, match set, mismatch w, deletion w, kind)``
        per constant occurrence of the query path.

        ``min_plen`` is the smallest candidate length at which the
        sink-anchored scan *compares* this occurrence instead of
        deleting it: the node at sink-distance ``s`` is compared iff
        ``plen >= s + 1``; the edge at sink-distance ``s`` needs the
        candidate to have an edge that deep, ``plen >= s + 2``.
        ``kind`` selects the candidate id set (False=node, True=edge).
        """
        weights = self.weights
        checks = []
        for distance, term in enumerate(reversed(query_path.nodes)):
            if not isinstance(term, Variable):
                checks.append((distance + 1,
                               self.match_set(self._intern(term)),
                               weights.node_mismatch,
                               weights.node_deletion, False))
        for distance, term in enumerate(reversed(query_path.edges)):
            if not isinstance(term, Variable):
                checks.append((distance + 2,
                               self.match_set(self._intern(term)),
                               weights.edge_mismatch,
                               weights.edge_deletion, True))
        return checks

    def __call__(self, query_path, gids, trim_to_anchor, anchor):
        if not gids:
            return gids
        weights = self.weights
        checks = self._occurrence_checks(query_path)
        anchor_set = (self.match_set(self._intern(anchor))
                      if trim_to_anchor and anchor is not None else None)

        query_len = query_path.length
        edge_len = query_len - 1
        node_mis = weights.node_mismatch
        edge_mis = weights.edge_mismatch
        insert_unit = weights.node_insertion + weights.edge_insertion
        delete_unit = weights.node_deletion + weights.edge_deletion

        def upper_bound(plen: int) -> float:
            return (node_mis * min(plen, query_len)
                    + edge_mis * min(plen - 1, edge_len)
                    + insert_unit * max(0, plen - query_len)
                    + delete_unit * max(0, query_len - plen))

        trimmed_floor = upper_bound(1)
        lookup = self.sketches.lookup
        qctx = (self.quotient.context(query_path, trim_to_anchor, anchor)
                if self.quotient is not None else None)
        #: Refine key -> ``(LB, UB)`` or :data:`_CLASS_DROPPED`, valid
        #: for this call only (the bounds depend on the query path).
        class_verdicts: "dict | None" = {} if qctx is not None else None
        judged = []          # (gid, LB, UB) for every trim survivor
        for gid in gids:
            found = lookup(gid)
            if found is None:
                # No sketch for this shard: never prune, never count
                # toward the threshold in a way that tightens it.
                judged.append((gid, 0.0, math.inf, None))
                continue
            sketch, row = found
            ckey = qctx.key_of(gid) if qctx is not None else None
            if ckey is not None:
                verdict = class_verdicts.get(ckey)
                if verdict is _CLASS_DROPPED:
                    continue
                if verdict is not None:
                    judged.append((gid, verdict[0], verdict[1],
                                   (sketch, row)))
                    continue
            node_set = sketch.node_sets[row]
            if anchor_set is not None and anchor_set.isdisjoint(node_set):
                if ckey is not None:
                    class_verdicts[ckey] = _CLASS_DROPPED
                continue        # exact: the §4.3 trim drops it anyway
            edge_set = sketch.edge_sets[row]
            stored = sketch.lengths[row]
            if anchor_set is None:
                # Untrimmed: the scored path is the stored path, so the
                # exact indel counts and the compared/deleted fate of
                # every constant occurrence follow from ``stored``.  A
                # deleted occurrence adds nothing here — its deletion
                # weight is already inside the blanket delete term.
                bound = (insert_unit * max(0, stored - query_len)
                         + delete_unit * max(0, query_len - stored))
                for min_plen, match_ids, mis_w, _del_w, is_edge in checks:
                    if stored >= min_plen and match_ids.isdisjoint(
                            edge_set if is_edge else node_set):
                        bound += mis_w
                ceiling = upper_bound(stored)
            else:
                # Anchored: the scored prefix length is unknown, so
                # only the trim-invariant floor survives — a disjoint
                # constant is compared or deleted whatever the trim
                # keeps.
                bound = 0.0
                for _min_plen, match_ids, mis_w, del_w, is_edge in checks:
                    unit = mis_w if mis_w < del_w else del_w
                    if unit and match_ids.isdisjoint(edge_set if is_edge
                                                     else node_set):
                        bound += unit
                ceiling = max(trimmed_floor, upper_bound(stored))
            if ckey is not None:
                class_verdicts[ckey] = (bound, ceiling)
            judged.append((gid, bound, ceiling, (sketch, row)))

        if self.mode == "safe":
            return self._keep_safe(judged)
        return self._keep_approx(judged, checks)

    def _keep_safe(self, judged):
        limit = self.limit
        if limit is None or len(judged) <= limit:
            # No truncation ⇒ every trim survivor is kept verbatim.
            return [gid for gid, _bound, _ceiling, _row in judged]
        threshold = sorted(ceiling
                           for _gid, _bound, ceiling, _row in judged)[limit - 1]
        return [gid for gid, bound, _ceiling, _row in judged
                if bound <= threshold]

    def keep_budget(self) -> "int | None":
        """The approx keep budget ``K``, or ``None`` for keep-all.

        ``ceil(8 / (1 - target))`` with an :data:`APPROX_MIN_KEEP`
        floor: halving the allowed miss rate doubles the budget, the
        default 0.95 target spends 160, and target 1.0 keeps
        everything (approx degenerates to exhaustive recall).  The
        constant is calibrated on the LUBM Fig. 9 workload by
        ``benchmarks/bench_twostage.py``, which measures the recall
        the budget actually delivers.
        """
        miss_rate = 1.0 - self.recall_target
        if miss_rate <= 0.0:
            return None
        return max(APPROX_MIN_KEEP, math.ceil(8.0 / miss_rate))

    def _keep_approx(self, judged, checks):
        budget = self.keep_budget()
        sketched = sum(1 for _g, _b, _c, located in judged
                       if located is not None)
        if budget is None or sketched <= budget:
            return [gid for gid, _bound, _ceiling, _located in judged]
        # Rank sketched candidates by (LB, gid) — the same ascending-gid
        # order the exact scorer uses to break cost ties — and cut at
        # the budget.  LSH band collisions with the query's signature
        # rescue beyond-budget candidates whose labels look like the
        # query's beyond what the bounds see.
        ranked = sorted((bound, gid) for gid, bound, _ceiling, located
                        in judged if located is not None)
        cut = ranked[budget - 1]
        query_ids = set()
        for _min_plen, match_ids, _mis_w, _del_w, _is_edge in checks:
            query_ids.update(match_ids)
        query_sig = (self.sketches.query_signature(query_ids)
                     if query_ids else None)
        collisions: "dict[int, set]" = {}
        kept = []
        for gid, bound, _ceiling, located in judged:
            if located is None or (bound, gid) <= cut:
                kept.append(gid)
                continue
            if query_sig is None:
                continue
            sketch, row = located
            rows = collisions.get(id(sketch))
            if rows is None:
                rows = collisions[id(sketch)] = sketch.collision_rows(
                    query_sig)
            if row in rows:
                kept.append(gid)
        return kept
