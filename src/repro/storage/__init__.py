"""Disk storage substrate: page store, buffer pool, record log, codec.

This package simulates the disk-resident database the paper stores its
index in (HyperGraphDB, §6.1): fixed-size pages with physical I/O
accounting and optional simulated latency, an LRU buffer pool whose
``clear()`` realises the cold-cache condition, and an append-only
record log holding the serialised paths.
"""

from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_text
from .bufferpool import BufferPool, CacheStats
from .dictionary import TermDictionary, decode_path_ids, encode_path_ids
from .pagestore import DEFAULT_PAGE_SIZE, IoStats, PageStore, StorageError
from .recordfile import RecordFile
from .serializer import CodecError, decode_path, encode_path, read_term, write_term

__all__ = [
    "BufferPool", "CacheStats", "CodecError", "DEFAULT_PAGE_SIZE", "IoStats",
    "PageStore", "RecordFile", "StorageError", "TermDictionary",
    "atomic_write_bytes", "atomic_write_json", "atomic_write_text",
    "decode_path", "decode_path_ids", "encode_path", "encode_path_ids",
    "read_term", "write_term",
]
