"""Crash-safe metadata writes: write a temp file, then ``os.replace``.

Index metadata — ``maps.json``, the ``labels.dict`` interner, the §7
``terms.dict`` dictionary, the incremental manifest — is rewritten in
full on every save.  A plain ``open(path, "w")`` truncates the old
contents *before* the new bytes land, so a crash mid-write leaves a
torn file that a server opening the index moments later reads as
corruption.  Every metadata writer therefore goes through this module:
the bytes are staged in a sibling temp file in the *same directory*
(``os.replace`` must not cross filesystems), fsynced, and renamed over
the target in one atomic step.  Readers see either the old complete
file or the new complete file, never a prefix of the new one.
"""

from __future__ import annotations

import json
import os
import tempfile


def atomic_write_bytes(path, data: bytes) -> int:
    """Atomically replace ``path`` with ``data``; returns bytes written.

    The temp file is created next to the target so the final
    ``os.replace`` is a same-filesystem rename.  On any failure the
    temp file is removed and the original ``path`` is left untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, staging = tempfile.mkstemp(dir=directory,
                                   prefix=os.path.basename(path) + ".",
                                   suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    return len(data)


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> int:
    """Atomically replace ``path`` with ``text``."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path, payload) -> int:
    """Atomically replace ``path`` with ``payload`` rendered as JSON."""
    return atomic_write_text(path, json.dumps(payload))


def sweep_tmp_debris(directory) -> "list[str]":
    """Delete leftover ``*.tmp`` staging files under ``directory``.

    A crash between :func:`atomic_write_bytes`'s ``mkstemp`` and its
    ``os.replace`` strands the staging file; the target is untouched
    (that is the whole contract), so the debris is pure garbage.  Index
    ``open`` paths call this so a recovered server does not accumulate
    one orphan per crash forever.  Returns the paths removed; files
    that vanish concurrently or cannot be removed are skipped silently
    (the sweep is best-effort hygiene, not correctness).
    """
    directory = os.fspath(directory)
    removed = []
    try:
        entries = os.listdir(directory)
    except OSError:
        return removed
    for name in entries:
        if not name.endswith(".tmp"):
            continue
        path = os.path.join(directory, name)
        try:
            if os.path.isfile(path):
                os.unlink(path)
                removed.append(path)
        except OSError:
            pass
    return removed
