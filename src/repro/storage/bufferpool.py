"""An LRU buffer pool over a :class:`~repro.storage.pagestore.PageStore`.

Query-time reads go through the pool; a *cold-cache* run starts from an
empty pool (``clear()``) while a *warm-cache* run reuses whatever the
previous runs faulted in — exactly the §6.2 experimental conditions.
Hit/miss counters feed the evaluation harness.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..resilience.retry import DEFAULT_RETRY, RetryPolicy, retry_call
from .pagestore import PageStore


@dataclass
class CacheStats:
    """Logical read counters at the buffer pool.

    ``prefetches`` counts pages faulted in by sequential read-ahead
    rather than by a demand read; a later demand hit on a prefetched
    page counts as a plain hit.
    """

    hits: int = 0
    misses: int = 0
    retries: int = 0
    prefetches: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.retries = 0
        self.prefetches = 0


class BufferPool:
    """Least-recently-used page cache.

    ``capacity`` is in pages.  A capacity of 0 disables caching (every
    read is physical), which is occasionally useful for worst-case
    measurements.

    Physical reads that fail transiently (or come back corrupt) are
    retried under ``retry`` — bounded exponential backoff — before the
    typed error is allowed to propagate; ``stats.retries`` counts how
    often that happened.

    ``read_ahead`` enables sequential prefetch: a demand miss on page
    ``p`` also faults in pages ``p+1 .. p+read_ahead`` (those not
    already resident).  Records in the path log are packed contiguously
    and cluster retrieval decodes them in ascending-offset order, so a
    cold-cache candidate scan that would otherwise pay one page fault
    per path amortises the faults across whole runs of pages.  Prefetch
    failures are swallowed — the page will simply fault on demand,
    where the error (if persistent) surfaces with full retry semantics.
    """

    def __init__(self, store: PageStore, capacity: int = 1024,
                 retry: "RetryPolicy | None" = None, read_ahead: int = 0):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if read_ahead < 0:
            raise ValueError(f"read_ahead must be >= 0, got {read_ahead}")
        self.store = store
        self.capacity = capacity
        self.retry = retry or DEFAULT_RETRY
        self.read_ahead = read_ahead
        self.stats = CacheStats()
        self._pages: OrderedDict[int, bytes] = OrderedDict()
        # The serving layer reads through one shared pool from many
        # worker threads; without a lock, an LRU move_to_end can race a
        # concurrent eviction of the same page and raise KeyError.
        self._lock = threading.RLock()

    def _physical_read(self, page_id: int) -> bytes:
        def count_retry(_attempt, _exc):
            self.stats.retries += 1

        return retry_call(self.store.read_page, page_id,
                          policy=self.retry, on_retry=count_retry)

    def read_page(self, page_id: int) -> bytes:
        """Read a page through the cache."""
        with self._lock:
            cached = self._pages.get(page_id)
            if cached is not None:
                self._pages.move_to_end(page_id)
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
            data = self._physical_read(page_id)
            if self.capacity:
                self._pages[page_id] = data
                if len(self._pages) > self.capacity:
                    self._pages.popitem(last=False)
                if self.read_ahead:
                    self._prefetch_after(page_id)
            return data

    def _prefetch_after(self, page_id: int) -> None:
        """Sequentially fault in the pages after a demand miss."""
        last = min(page_id + self.read_ahead, self.store.page_count - 1)
        for ahead in range(page_id + 1, last + 1):
            if ahead in self._pages:
                continue
            try:
                data = self._physical_read(ahead)
            except Exception:
                return
            self.stats.prefetches += 1
            self._pages[ahead] = data
            if len(self._pages) > self.capacity:
                self._pages.popitem(last=False)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write through to the store and refresh the cached copy."""
        with self._lock:
            self.store.write_page(page_id, data)
            if self.capacity:
                self._pages[page_id] = data.ljust(self.store.page_size, b"\x00")
                self._pages.move_to_end(page_id)
                if len(self._pages) > self.capacity:
                    self._pages.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached page — the cold-cache starting condition."""
        with self._lock:
            self._pages.clear()

    def warm(self, page_ids) -> None:
        """Pre-fault the given pages (builds a warm cache explicitly)."""
        for page_id in page_ids:
            self.read_page(page_id)

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def __repr__(self):
        return (f"<BufferPool: {self.resident_pages}/{self.capacity} pages, "
                f"hit ratio {self.stats.hit_ratio:.2%}>")
