"""Dictionary compression for path records (the paper's §7 future work).

The paper lists "compression mechanisms for reducing the overhead
required by [the index's] construction and maintenance" as future
work.  This module implements the classic RDF-store answer: a *term
dictionary* mapping every distinct term to a small integer id, so path
records store varint id sequences instead of repeated UTF-8 labels.
Long URIs shared by thousands of paths (type predicates, class nodes)
shrink to one or two bytes each.

The dictionary itself is an append-only stream of terms in first-use
order (a term's id *is* its position), persisted next to the path log
and re-read sequentially on open.
"""

from __future__ import annotations

import io
import os
from typing import BinaryIO

from ..paths.model import Path
from ..rdf.terms import Term
from .serializer import (CodecError, read_term, read_varint, write_term,
                         write_varint)


class TermDictionary:
    """A bidirectional term ↔ id mapping with append-only persistence."""

    def __init__(self):
        self._terms: list[Term] = []
        self._ids: dict[Term, int] = {}

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def encode(self, term: Term) -> int:
        """The id of ``term``, assigning the next id on first use."""
        existing = self._ids.get(term)
        if existing is not None:
            return existing
        term_id = len(self._terms)
        self._terms.append(term)
        self._ids[term] = term_id
        return term_id

    def id_of(self, term: Term) -> int:
        """The id of a term known to be present (KeyError otherwise)."""
        return self._ids[term]

    def lookup(self, term_id: int) -> Term:
        """The term behind ``term_id``."""
        if not 0 <= term_id < len(self._terms):
            raise CodecError(f"term id {term_id} out of range "
                             f"[0, {len(self._terms)})")
        return self._terms[term_id]

    # -- persistence -------------------------------------------------------

    def save(self, path) -> int:
        """Write the dictionary to ``path``; returns bytes written."""
        buffer = io.BytesIO()
        buffer.write(b"TDIC")
        write_varint(buffer, len(self._terms))
        for term in self._terms:
            write_term(buffer, term)
        from .atomic import atomic_write_bytes
        return atomic_write_bytes(path, buffer.getvalue())

    @classmethod
    def load(cls, path) -> "TermDictionary":
        with open(path, "rb") as handle:
            stream: BinaryIO = io.BytesIO(handle.read())
        magic = stream.read(4)
        if magic != b"TDIC":
            raise CodecError(f"{os.fspath(path)} is not a term dictionary "
                             f"(magic {magic!r})")
        count = read_varint(stream)
        dictionary = cls()
        for _ in range(count):
            dictionary.encode(read_term(stream))
        if len(dictionary) != count:
            raise CodecError("duplicate terms in dictionary stream")
        return dictionary


def encode_path_ids(path: Path, dictionary: TermDictionary) -> bytes:
    """Serialise a path as dictionary ids (compact record format)."""
    stream = io.BytesIO()
    write_varint(stream, path.length)
    for node in path.nodes:
        write_varint(stream, dictionary.encode(node))
    for edge in path.edges:
        write_varint(stream, dictionary.encode(edge))
    if path.node_ids is None:
        stream.write(b"\x00")
    else:
        stream.write(b"\x01")
        for node_id in path.node_ids:
            write_varint(stream, node_id)
    return stream.getvalue()


def decode_path_ids(data: bytes, dictionary: TermDictionary) -> Path:
    """Deserialise a dictionary-encoded path."""
    stream = io.BytesIO(data)
    count = read_varint(stream)
    if count < 1:
        raise CodecError("path must have at least one node")
    nodes = [dictionary.lookup(read_varint(stream)) for _ in range(count)]
    edges = [dictionary.lookup(read_varint(stream)) for _ in range(count - 1)]
    flag = stream.read(1)
    if flag == b"\x00":
        node_ids = None
    elif flag == b"\x01":
        node_ids = [read_varint(stream) for _ in range(count)]
    else:
        raise CodecError(f"bad node-id presence flag {flag!r}")
    return Path(nodes, edges, node_ids=node_ids)
