"""A page-oriented file store with simulated device latency.

The paper's prototype keeps its index in a disk-resident graph database
(HyperGraphDB) and evaluates cold-cache versus warm-cache behaviour
(§6.2).  This module is our storage substrate: fixed-size pages in a
single file, explicit read/write I/O accounting, and an optional
per-read latency knob so benchmarks can reproduce the cold/warm gap on
hardware whose page cache would otherwise hide it.

The store is deliberately primitive — no WAL, no concurrency — because
the indexed paths are write-once, read-many (the paper's index is built
offline and only read at query time).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass

from ..resilience.errors import (PageCorruptError, StorageError,
                                 TransientStorageError)

DEFAULT_PAGE_SIZE = 4096

__all__ = ["DEFAULT_PAGE_SIZE", "IoStats", "PageCorruptError", "PageStore",
           "StorageError", "TransientStorageError"]


@dataclass
class IoStats:
    """Physical I/O counters (page granularity)."""

    page_reads: int = 0
    page_writes: int = 0
    read_seconds: float = 0.0

    def reset(self) -> None:
        self.page_reads = 0
        self.page_writes = 0
        self.read_seconds = 0.0


class PageStore:
    """Fixed-size pages in one backing file.

    Parameters
    ----------
    path:
        The backing file.  Created on first write if missing.
    page_size:
        Bytes per page (default 4096).
    read_latency:
        Simulated seconds added to every *physical* page read.  Zero by
        default (tests); the cold/warm benchmarks set a small value so
        buffer pool misses are visible in the measured times the way
        they were on the paper's RAID array.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` (or
        any object with ``on_read(page_id, data) -> bytes``) consulted
        on every physical read, before checksum verification — injected
        corruption therefore trips the same
        :class:`~repro.resilience.errors.PageCorruptError` real bit rot
        would.  Assignable after construction; ``None`` disables it.
    """

    def __init__(self, path, page_size: int = DEFAULT_PAGE_SIZE,
                 read_latency: float = 0.0, verify_checksums: bool = True,
                 fault_injector=None):
        if page_size < 64:
            raise StorageError(f"page_size too small: {page_size}")
        self.path = os.fspath(path)
        self.page_size = page_size
        self.read_latency = read_latency
        self.verify_checksums = verify_checksums
        self.fault_injector = fault_injector
        self.stats = IoStats()
        mode = "r+b" if os.path.exists(self.path) else "w+b"
        self._file = open(self.path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % page_size:
            raise StorageError(f"{self.path} is not page-aligned "
                               f"({size} bytes, page size {page_size})")
        self._page_count = size // page_size
        self._closed = False
        # Per-page CRC32, persisted in a sidecar on flush().  Reads
        # verify against it when an entry exists, so silent on-disk
        # corruption surfaces as StorageError instead of bad answers.
        self._checksums: dict[int, int] = {}
        if verify_checksums:
            self._load_checksums()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - best effort
        try:
            self.close()
        except Exception:
            pass

    # -- page API --------------------------------------------------------------

    @property
    def page_count(self) -> int:
        return self._page_count

    def allocate(self) -> int:
        """Append a zeroed page; returns its page id."""
        self._check_open()
        page_id = self._page_count
        self._file.seek(page_id * self.page_size)
        self._file.write(b"\x00" * self.page_size)
        self._page_count += 1
        self.stats.page_writes += 1
        return page_id

    def write_page(self, page_id: int, data: bytes) -> None:
        """Overwrite one page; ``data`` must fit the page size."""
        self._check_open()
        self._check_page(page_id)
        if len(data) > self.page_size:
            raise StorageError(f"record of {len(data)} bytes exceeds page "
                               f"size {self.page_size}")
        padded = data.ljust(self.page_size, b"\x00")
        self._file.seek(page_id * self.page_size)
        self._file.write(padded)
        if self.verify_checksums:
            self._checksums[page_id] = zlib.crc32(padded)
        self.stats.page_writes += 1

    def read_page(self, page_id: int) -> bytes:
        """Physically read one page (pays the simulated latency)."""
        self._check_open()
        self._check_page(page_id)
        started = time.perf_counter()
        if self.read_latency:
            time.sleep(self.read_latency)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if self.fault_injector is not None:
            data = self.fault_injector.on_read(page_id, data)
        if self.verify_checksums:
            self._verify(page_id, data)
        self.stats.page_reads += 1
        self.stats.read_seconds += time.perf_counter() - started
        return data

    def flush(self) -> None:
        self._check_open()
        self._file.flush()
        os.fsync(self._file.fileno())
        if self.verify_checksums:
            self._save_checksums()

    # -- checksums ---------------------------------------------------------

    @property
    def _checksum_path(self) -> str:
        return self.path + ".crc"

    def _load_checksums(self) -> None:
        if not os.path.exists(self._checksum_path):
            return
        with open(self._checksum_path, "rb") as handle:
            blob = handle.read()
        if len(blob) % 8:
            raise StorageError(f"{self._checksum_path} is corrupt")
        for position in range(0, len(blob), 8):
            page_id = int.from_bytes(blob[position:position + 4], "big")
            crc = int.from_bytes(blob[position + 4:position + 8], "big")
            self._checksums[page_id] = crc

    def _save_checksums(self) -> None:
        chunks = []
        for page_id in sorted(self._checksums):
            chunks.append(page_id.to_bytes(4, "big"))
            chunks.append(self._checksums[page_id].to_bytes(4, "big"))
        with open(self._checksum_path, "wb") as handle:
            handle.write(b"".join(chunks))

    def _verify(self, page_id: int, data: bytes) -> None:
        expected = self._checksums.get(page_id)
        if expected is not None and zlib.crc32(data) != expected:
            raise PageCorruptError(
                f"checksum mismatch on page {page_id} of {self.path}: "
                f"on-disk corruption detected")

    def size_bytes(self) -> int:
        """Current on-disk size."""
        return self._page_count * self.page_size

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("page store is closed")

    def _check_page(self, page_id: int) -> None:
        if not 0 <= page_id < self._page_count:
            raise StorageError(f"page {page_id} out of range "
                               f"[0, {self._page_count})")
