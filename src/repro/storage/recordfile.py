"""An append-only record log on top of the page store.

Records are length-prefixed byte blobs packed contiguously across
pages (a record freely straddles page boundaries, like a write-ahead
log).  A record's identifier is its byte offset in the log; readers
fetch exactly the pages the record touches, through the buffer pool,
so logical record reads translate into the physical page reads the
cold/warm experiments count.
"""

from __future__ import annotations

import io
from typing import Iterator

from .bufferpool import BufferPool
from .pagestore import PageStore, StorageError
from .serializer import read_varint, write_varint


class RecordFile:
    """Append-only log of byte records over a :class:`PageStore`.

    One writer at build time, any number of readers at query time.  The
    log's end position is persisted in the first page (the header), so
    a reopened file knows where its records stop.
    """

    _HEADER_PAGES = 1

    def __init__(self, store: PageStore, pool: "BufferPool | None" = None):
        self.store = store
        self.pool = pool or BufferPool(store)
        if store.page_count == 0:
            store.allocate()
            self._end = self._data_start
            self._write_header()
        else:
            self._end = self._read_header()
        # Tail page staged in memory between appends to avoid a
        # read-modify-write cycle per record.
        self._tail_page_id = self._end // store.page_size
        self._tail = bytearray(self._tail_bytes())
        self._sealed = False

    @property
    def _data_start(self) -> int:
        return self._HEADER_PAGES * self.store.page_size

    # -- header ------------------------------------------------------------

    def _write_header(self) -> None:
        header = io.BytesIO()
        header.write(b"RLOG")
        write_varint(header, self._end)
        self.store.write_page(0, header.getvalue())

    def _read_header(self) -> int:
        page = self.store.read_page(0)
        stream = io.BytesIO(page)
        magic = stream.read(4)
        if magic != b"RLOG":
            raise StorageError(f"{self.store.path} is not a record log "
                               f"(magic {magic!r})")
        return read_varint(stream)

    def _tail_bytes(self) -> bytes:
        if self._tail_page_id >= self.store.page_count:
            return b""
        data = self.store.read_page(self._tail_page_id)
        return data[:self._end - self._tail_page_id * self.store.page_size]

    # -- writing -------------------------------------------------------------

    def append(self, payload: bytes) -> int:
        """Append one record; returns its offset (the record id)."""
        if self._sealed:
            raise StorageError("record log is sealed (read-only)")
        record_offset = self._end
        prefix = io.BytesIO()
        write_varint(prefix, len(payload))
        data = prefix.getvalue() + payload
        page_size = self.store.page_size
        cursor = 0
        while cursor < len(data):
            room = page_size - len(self._tail)
            take = min(room, len(data) - cursor)
            self._tail.extend(data[cursor:cursor + take])
            cursor += take
            if len(self._tail) == page_size:
                self._flush_tail()
                self._tail_page_id += 1
                self._tail = bytearray()
        self._end = record_offset + len(data)
        return record_offset

    def _flush_tail(self) -> None:
        while self._tail_page_id >= self.store.page_count:
            self.store.allocate()
        self.pool.write_page(self._tail_page_id, bytes(self._tail))

    def sync(self) -> None:
        """Flush the staged tail and persist the header."""
        if self._tail:
            self._flush_tail()
        self._write_header()
        self.store.flush()

    def seal(self) -> None:
        """Sync and drop the staged tail: the log becomes read-only.

        A sealed log serves every read through the buffer pool, which
        is what makes cold-cache measurements honest on a log that was
        just written (the staged tail would otherwise shadow the disk).
        Appending to a sealed log raises :class:`StorageError`.
        """
        self.sync()
        self._tail = bytearray()
        self._tail_page_id = -1
        self._sealed = True

    def discard_tail(self) -> None:
        """Seal without writing: drop the staged tail, reads go via the pool.

        Correct only when the tail page is already persisted — which is
        exactly the state of a log just opened from disk, where the
        staging was *read from* the store.  Read-only openers use this
        so that cold-cache measurements and fault injection see every
        physical page read instead of being shadowed by the staging.
        """
        self._tail = bytearray()
        self._tail_page_id = -1
        self._sealed = True

    # -- reading ---------------------------------------------------------------

    def read(self, offset: int) -> bytes:
        """Read the record starting at ``offset``."""
        if not self._data_start <= offset < self._end:
            raise StorageError(f"record offset {offset} out of range "
                               f"[{self._data_start}, {self._end})")
        page_size = self.store.page_size
        # Parse the varint length byte-by-byte (it may straddle pages).
        length = 0
        shift = 0
        cursor = offset
        while True:
            byte = self._byte_at(cursor)
            cursor += 1
            length |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise StorageError("corrupt record length")
        first_page = cursor // page_size
        last_page = (cursor + length - 1) // page_size if length else first_page
        chunks = []
        for page_id in range(first_page, last_page + 1):
            chunks.append(self._page_bytes(page_id))
        blob = b"".join(chunks)
        start = cursor - first_page * page_size
        return blob[start:start + length]

    def _byte_at(self, position: int) -> int:
        page_id, offset = divmod(position, self.store.page_size)
        return self._page_bytes(page_id)[offset]

    def _page_bytes(self, page_id: int) -> bytes:
        # The staged tail page may not be on disk yet.
        if page_id == self._tail_page_id and self._tail:
            return bytes(self._tail).ljust(self.store.page_size, b"\x00")
        return self.pool.read_page(page_id)

    def scan(self) -> Iterator[tuple[int, bytes]]:
        """Iterate ``(offset, record)`` over the whole log."""
        offset = self._data_start
        while offset < self._end:
            payload = self.read(offset)
            yield offset, payload
            header_len = _varint_width(len(payload))
            offset += header_len + len(payload)

    @property
    def end_offset(self) -> int:
        return self._end

    def record_pages(self, offset: int, length: int) -> range:
        """The page ids a record at ``offset`` with ``length`` spans."""
        start = offset // self.store.page_size
        stop = (offset + length) // self.store.page_size + 1
        return range(start, stop)


def _varint_width(value: int) -> int:
    width = 1
    while value >= 0x80:
        value >>= 7
        width += 1
    return width
