"""Binary codec for terms and paths stored in the page files.

The index persists extracted paths on disk (the paper assumes the data
graph "cannot fit in memory and ... can only be stored on disk", §6.1).
This module provides the compact record format: a varint-based, tagged
binary encoding that round-trips every term kind and path exactly.

Format
------
- varint: unsigned LEB128.
- string: varint length + UTF-8 bytes.
- term: 1 tag byte (``U``/``P``/``B``/``V`` = URI, plain literal, blank
  node, variable; ``L`` = language literal; ``D`` = datatyped literal)
  followed by the string(s).
- path: varint node count, the node terms, the edge terms, a presence
  flag plus varints for the graph node ids.
"""

from __future__ import annotations

import io
from typing import BinaryIO

from ..paths.model import Path
from ..rdf.terms import BlankNode, Literal, Term, URI, Variable

_TAG_URI = b"U"
_TAG_PLAIN = b"P"
_TAG_LANG = b"L"
_TAG_DATATYPE = b"D"
_TAG_BLANK = b"B"
_TAG_VARIABLE = b"V"


class CodecError(ValueError):
    """Raised when a byte stream does not decode to a valid record."""


def write_varint(stream: BinaryIO, value: int) -> None:
    """Write an unsigned LEB128 varint."""
    if value < 0:
        raise CodecError(f"varints are unsigned, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            stream.write(bytes((byte | 0x80,)))
        else:
            stream.write(bytes((byte,)))
            return


def read_varint(stream: BinaryIO) -> int:
    """Read an unsigned LEB128 varint."""
    result = 0
    shift = 0
    while True:
        raw = stream.read(1)
        if not raw:
            raise CodecError("truncated varint")
        byte = raw[0]
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


def write_string(stream: BinaryIO, value: str) -> None:
    data = value.encode("utf-8")
    write_varint(stream, len(data))
    stream.write(data)


def read_string(stream: BinaryIO) -> str:
    length = read_varint(stream)
    data = stream.read(length)
    if len(data) != length:
        raise CodecError("truncated string")
    return data.decode("utf-8")


def write_term(stream: BinaryIO, term: Term) -> None:
    """Encode one term with its tag byte."""
    if isinstance(term, URI):
        stream.write(_TAG_URI)
        write_string(stream, term.value)
    elif isinstance(term, Literal):
        if term.language:
            stream.write(_TAG_LANG)
            write_string(stream, term.value)
            write_string(stream, term.language)
        elif term.datatype:
            stream.write(_TAG_DATATYPE)
            write_string(stream, term.value)
            write_string(stream, term.datatype.value)
        else:
            stream.write(_TAG_PLAIN)
            write_string(stream, term.value)
    elif isinstance(term, BlankNode):
        stream.write(_TAG_BLANK)
        write_string(stream, term.value)
    elif isinstance(term, Variable):
        stream.write(_TAG_VARIABLE)
        write_string(stream, term.value)
    else:
        raise CodecError(f"cannot encode {type(term).__name__}")


def read_term(stream: BinaryIO) -> Term:
    """Decode one term."""
    tag = stream.read(1)
    if not tag:
        raise CodecError("truncated term tag")
    if tag == _TAG_URI:
        return URI(read_string(stream))
    if tag == _TAG_PLAIN:
        return Literal(read_string(stream))
    if tag == _TAG_LANG:
        value = read_string(stream)
        return Literal(value, language=read_string(stream))
    if tag == _TAG_DATATYPE:
        value = read_string(stream)
        return Literal(value, datatype=URI(read_string(stream)))
    if tag == _TAG_BLANK:
        return BlankNode(read_string(stream))
    if tag == _TAG_VARIABLE:
        return Variable(read_string(stream))
    raise CodecError(f"unknown term tag {tag!r}")


def encode_path(path: Path) -> bytes:
    """Serialise a path to bytes."""
    stream = io.BytesIO()
    write_varint(stream, path.length)
    for node in path.nodes:
        write_term(stream, node)
    for edge in path.edges:
        write_term(stream, edge)
    if path.node_ids is None:
        stream.write(b"\x00")
    else:
        stream.write(b"\x01")
        for node_id in path.node_ids:
            write_varint(stream, node_id)
    return stream.getvalue()


def decode_path(data: bytes) -> Path:
    """Deserialise a path from bytes."""
    stream = io.BytesIO(data)
    count = read_varint(stream)
    if count < 1:
        raise CodecError("path must have at least one node")
    nodes = [read_term(stream) for _ in range(count)]
    edges = [read_term(stream) for _ in range(count - 1)]
    flag = stream.read(1)
    if flag == b"\x00":
        node_ids = None
    elif flag == b"\x01":
        node_ids = [read_varint(stream) for _ in range(count)]
    else:
        raise CodecError(f"bad node-id presence flag {flag!r}")
    return Path(nodes, edges, node_ids=node_ids)
