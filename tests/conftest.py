"""Shared fixtures: the GovTrack running example and a small LUBM engine.

Expensive artifacts (indexes, engines) are session-scoped; tests that
mutate engine state (cache clearing) do so through APIs that leave the
engine reusable.
"""

from __future__ import annotations

import pytest

from repro.datasets.govtrack import (govtrack_figure_graph, govtrack_graph,
                                     query_q1, query_q2)
from repro.datasets import dataset
from repro.engine import SamaEngine
from repro.index import build_index


@pytest.fixture(scope="session")
def govtrack():
    """The canonical Fig. 1 data graph."""
    return govtrack_graph()


@pytest.fixture(scope="session")
def govtrack_figure():
    """Fig. 1 with the decorative nodes included."""
    return govtrack_figure_graph()


@pytest.fixture(scope="session")
def q1():
    return query_q1()


@pytest.fixture(scope="session")
def q2():
    return query_q2()


@pytest.fixture(scope="session")
def govtrack_engine(govtrack, tmp_path_factory):
    """A Sama engine over the GovTrack example (persistent index dir)."""
    directory = tmp_path_factory.mktemp("govtrack-index")
    engine = SamaEngine.from_graph(govtrack, directory=str(directory))
    yield engine
    engine.close()


@pytest.fixture(scope="session")
def lubm_small():
    """A small LUBM graph shared by the integration tests."""
    return dataset("lubm").build(2500, seed=7)


@pytest.fixture(scope="session")
def lubm_engine(lubm_small, tmp_path_factory):
    directory = tmp_path_factory.mktemp("lubm-index")
    engine = SamaEngine.from_graph(lubm_small, directory=str(directory))
    yield engine
    engine.close()


@pytest.fixture
def index_dir(tmp_path):
    """A fresh directory for building throwaway indexes."""
    return str(tmp_path / "index")


@pytest.fixture
def tiny_index(tmp_path, govtrack):
    """A freshly built GovTrack index (function-scoped, mutable)."""
    index, stats = build_index(govtrack, str(tmp_path / "tiny"))
    yield index
    index.close()

