"""Unit tests for path alignment (§4.3) — including the paper's examples."""

import pytest

from repro.paths.alignment import (Alignment, AlignmentCounts, align,
                                   align_optimal, exact_match)
from repro.paths.model import path_of
from repro.rdf.terms import Variable
from repro.scoring.quality import lambda_cost
from repro.scoring.weights import PAPER_WEIGHTS, ScoringWeights


# The paper's §4.3 paths (short labels, as printed in the paper).
P = path_of("CB", "sponsor", "A0056", "aTo", "B1432", "subject", "HC")
P_PRIME = path_of("JR", "sponsor", "A1589", "aTo", "B0532", "subject", "HC")
Q1 = path_of("CB", "sponsor", "?v1", "aTo", "?v2", "subject", "HC")
Q2 = path_of("?v3", "sponsor", "?v2", "subject", "HC")


class TestPaperWorkedExamples:
    def test_lambda_p_q1_is_zero(self):
        """q1 requires only a substitution: λ(p, q1) = 0."""
        alignment = align(P, Q1)
        assert alignment.is_exact
        assert lambda_cost(alignment) == 0.0

    def test_lambda_p_q2_is_one_point_five(self):
        """q2 inserts one (edge, node) pair: λ = b + d = 0.5 + 1 = 1.5."""
        alignment = align(P, Q2)
        counts = alignment.counts
        assert counts.node_insertions == 1
        assert counts.edge_insertions == 1
        assert counts.node_mismatches == 0
        assert counts.edge_mismatches == 0
        assert lambda_cost(alignment) == 1.5

    def test_lambda_p_prime_q1_is_one(self):
        """p' mismatches CB/JR: λ = a = 1."""
        alignment = align(P_PRIME, Q1)
        counts = alignment.counts
        assert counts.node_mismatches == 1
        assert counts.node_insertions == 0
        assert lambda_cost(alignment) == 1.0

    def test_substitution_of_exact_alignment(self):
        subst = align(P, Q1).substitution
        assert subst[Variable("v1")].value == "A0056"
        assert subst[Variable("v2")].value == "B1432"


class TestVariableHandling:
    def test_variable_edge_binds(self):
        q = path_of("CB", "?e1", "B1432", "subject", "HC")
        p = path_of("CB", "sponsor", "B1432", "subject", "HC")
        alignment = align(p, q)
        assert alignment.is_exact
        assert alignment.substitution[Variable("e1")].value == "sponsor"

    def test_repeated_variable_conflicting_binding_counts_mismatch(self):
        q = path_of("?x", "p", "?x")
        p = path_of("A", "p", "B")
        alignment = align(p, q)
        assert alignment.counts.node_mismatches == 1

    def test_repeated_variable_consistent_binding_free(self):
        q = path_of("?x", "p", "mid", "q", "?x")
        p = path_of("A", "p", "mid", "q", "A")
        alignment = align(p, q)
        assert alignment.is_exact


class TestInsertionsAndDeletions:
    def test_source_side_surplus_is_inserted(self):
        q = path_of("?v", "subject", "HC")
        p = path_of("CB", "sponsor", "B1432", "subject", "HC")
        counts = align(p, q).counts
        assert counts.node_insertions == 1
        assert counts.edge_insertions == 1

    def test_query_longer_than_data_deletes_free(self):
        q = path_of("?a", "p1", "?b", "p2", "?c", "subject", "HC")
        p = path_of("X", "subject", "HC")
        counts = align(p, q).counts
        assert counts.node_deletions == 2
        assert counts.edge_deletions == 2
        # Deletions cost 0 with paper weights.
        assert lambda_cost(counts) == 0.0

    def test_sink_mismatch_counts(self):
        q = path_of("?v", "gender", "Male")
        p = path_of("CB", "gender", "Female")
        counts = align(p, q).counts
        assert counts.node_mismatches == 1

    def test_single_node_paths(self):
        counts = align(path_of("A"), path_of("A")).counts
        assert counts.is_exact
        counts = align(path_of("A"), path_of("B")).counts
        assert counts.node_mismatches == 1


class TestCustomMatcher:
    def test_matcher_widens_equality(self):
        q = path_of("?v", "gender", "Man")
        p = path_of("CB", "gender", "Male")

        def lenient(data_label, query_label):
            pair = {str(data_label), str(query_label)}
            return data_label == query_label or pair == {"Male", "Man"}

        assert align(p, q, lenient).is_exact
        assert not align(p, q).is_exact


class TestTranscript:
    def test_ops_reversed_to_source_to_sink(self):
        alignment = align(P, Q2)
        kinds = [op.kind for op in alignment.ops]
        # Insertions appear before the final subject/HC matches.
        assert "insert-node" in kinds
        assert kinds[-1] == "match-node"  # HC anchored last in scan order

    def test_explain_renders(self):
        text = align(P, Q2).explain()
        assert "insert" in text
        assert "φ" in text


class TestOptimalAlignment:
    def test_optimal_matches_greedy_on_paper_examples(self):
        for p, q in [(P, Q1), (P, Q2), (P_PRIME, Q1)]:
            greedy = lambda_cost(align(p, q))
            optimal = lambda_cost(align_optimal(p, q, PAPER_WEIGHTS))
            assert optimal == greedy

    def test_optimal_never_worse_than_greedy(self):
        cases = [
            (path_of("A", "p", "B", "q", "C", "r", "D"),
             path_of("?x", "q", "?y", "r", "D")),
            (path_of("A", "p", "B", "p", "C", "p", "D", "p", "E"),
             path_of("?x", "p", "E")),
            (path_of("A", "zz", "B", "q", "C"),
             path_of("A", "q", "C")),
        ]
        for p, q in cases:
            greedy = lambda_cost(align(p, q))
            optimal = lambda_cost(align_optimal(p, q, PAPER_WEIGHTS))
            assert optimal <= greedy

    def test_optimal_respects_custom_weights(self):
        # With free insertions, inserting beats mismatching.
        weights = ScoringWeights(node_mismatch=10.0, edge_mismatch=10.0,
                                 node_insertion=0.0, edge_insertion=0.0)
        p = path_of("A", "x", "B", "q", "C")
        q = path_of("A", "q", "C")
        optimal = align_optimal(p, q, weights)
        assert lambda_cost(optimal.counts, weights) == 0.0


class TestComplexity:
    def test_linear_op_count(self):
        """The scan touches each (edge, node) pair at most once."""
        import itertools
        for n in (4, 16, 64):
            labels = list(itertools.chain.from_iterable(
                (f"n{i}", f"e{i}") for i in range(n)))
            labels.append("sink")
            p = path_of(*labels)
            q = path_of("?a", "e0", "sink")
            alignment = align(p, q)
            # ops: one per pair of the longer path + sink comparison + q ops
            assert len(alignment.ops) <= 2 * (p.length + q.length)
