"""Unit tests for Answer materialisation and the forest (Fig. 4)."""

import pytest

from repro.engine.forest import PathForest
from repro.rdf.terms import Literal, Variable


GOV = "http://example.org/govtrack/"


@pytest.fixture
def top_answer(govtrack_engine, q1):
    return govtrack_engine.query(q1, k=1)[0]


class TestAnswer:
    def test_score_components(self, top_answer):
        assert top_answer.score == top_answer.quality + top_answer.conformity
        assert top_answer.quality == 0.0

    def test_matched_and_complete(self, top_answer):
        assert top_answer.matched_count == 3
        assert top_answer.is_complete

    def test_substitution_merged(self, top_answer):
        bindings = top_answer.substitution()
        assert bindings[Variable("v2")].value.endswith("B1432")
        assert bindings[Variable("v3")].value.endswith("PierceDickes")

    def test_coherence(self, top_answer):
        assert top_answer.is_coherent
        assert top_answer.substitution(strict=True) is not None

    def test_signature_is_triple_set(self, top_answer):
        signature = top_answer.signature()
        assert len(signature) == 5  # 3 + 1 + 1 triples, HC/B1432 shared

    def test_describe_renders(self, top_answer):
        text = top_answer.describe()
        assert "score=" in text
        assert "bindings" in text


class TestSubgraph:
    def test_shared_nodes_merged(self, top_answer):
        """B1432 is on two paths but must appear once in G' (§3.1)."""
        sub = top_answer.subgraph()
        b1432 = [n for n in sub.nodes()
                 if sub.label_of(n).value.endswith("B1432")]
        assert len(b1432) == 1

    def test_subgraph_triples_match_signature(self, top_answer):
        sub = top_answer.subgraph()
        assert set(sub.triples()) == set(top_answer.signature())

    def test_subgraph_is_subgraph_of_data(self, top_answer, govtrack):
        data_triples = set(govtrack.triples())
        for triple in top_answer.subgraph().triples():
            assert triple in data_triples


class TestForest:
    def test_fig4_solid_and_dashed(self, govtrack_engine, q1):
        forest = govtrack_engine.explain(q1, entries_per_cluster=6)
        assert forest.solid_edges()
        assert forest.dashed_edges()

    def test_fig4_degree_values(self, govtrack_engine, q1):
        forest = govtrack_engine.explain(q1, entries_per_cluster=10)
        degrees = {edge.degree for edge in forest.edges}
        # The paper's forest shows degrees 1 and 0.5 on (q2, q1) pairs.
        assert 1.0 in degrees
        assert 0.5 in degrees

    def test_edge_labels_render(self, govtrack_engine, q1):
        forest = govtrack_engine.explain(q1)
        label = forest.edges[0].label()
        assert label.startswith("(q")
        assert ": [" in label

    def test_trees_contain_full_solution(self, govtrack_engine, q1):
        forest = govtrack_engine.explain(q1, entries_per_cluster=6)
        cluster_count = len(forest.clusters)
        best_tree = forest.trees()[0]
        clusters_touched = {cluster for cluster, _rank in best_tree}
        assert len(clusters_touched) == cluster_count

    def test_render(self, govtrack_engine, q1):
        text = govtrack_engine.explain(q1).render()
        assert "----" in text
