"""The asyncio front end + the HTTP/1.1 framing regression suite.

Covers the serving-layer bugfix batch and the new front end:

- **keep-alive framing**: a 400 (bad JSON), a 404 POST with a body,
  and a short-read (chunked-delivery) client must all leave the
  connection correctly framed — the next pipelined request on the same
  socket is answered normally on *both* front ends (regression: the
  threaded handler used to leave unread body bytes to be parsed as the
  next request line);
- **write-boundary resilience**: a client that disconnects before
  reading its response must not crash the handler — the server keeps
  serving and counts ``sama_client_disconnects_total``;
- **single-flight**: N concurrent identical cold queries trigger
  exactly one engine computation, N−1 coalesced waiters, and
  byte-identical response bodies;
- **tenant quotas**: token-bucket admission per ``X-API-Key``, 429 +
  ``Retry-After`` when empty, per-tenant counters on ``/stats``;
- **bounded backlog** and lifecycle parity (drain) of the asyncio
  server.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time

import pytest

from repro.resilience import QuotaExceededError
from repro.serving import (ServingClient, ServingConfig, ServingEngine,
                           SingleFlight, TenantQuotas, TokenBucket, serve,
                           serve_async)

QUERY = ('PREFIX gov: <http://example.org/govtrack/> '
         'SELECT ?v WHERE { ?v gov:gender "Male" . }')

QUERY_BODY = json.dumps({"query": QUERY, "k": 5}).encode()


def _post(body: bytes, path: str = "/query",
          headers: "dict[str, str] | None" = None) -> bytes:
    lines = [f"POST {path} HTTP/1.1", "Host: t",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _get(path: str) -> bytes:
    return f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode()


def _read_response(handle) -> "tuple[int, dict, bytes]":
    """One framed HTTP response off a socket file (or AssertionError)."""
    status_line = handle.readline()
    assert status_line.startswith(b"HTTP/1.1 "), status_line
    status = int(status_line.split()[1])
    headers: "dict[str, str]" = {}
    while True:
        line = handle.readline()
        if line in (b"\r\n", b"\n"):
            break
        assert line, "connection closed inside response headers"
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = handle.read(length) if length else b""
    assert len(body) == length, "truncated response body"
    return status, headers, body


def _connect(server) -> "tuple[socket.socket, object]":
    sock = socket.create_connection((server.host, server.port), timeout=30)
    return sock, sock.makefile("rb")


@pytest.fixture(scope="module", params=["threads", "asyncio"])
def server(request, govtrack_engine):
    """One of the two front ends over the same engine — every framing
    test runs against both."""
    serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
    if request.param == "asyncio":
        http = serve_async(serving, port=0).serve_background()
    else:
        http = serve(serving, port=0).serve_background()
    http.frontend = request.param
    yield http
    http.shutdown(close_engine=False)


class TestKeepAliveFraming:
    def test_two_pipelined_requests_one_connection(self, server):
        sock, handle = _connect(server)
        try:
            sock.sendall(_post(QUERY_BODY) + _post(QUERY_BODY))
            first = _read_response(handle)
            second = _read_response(handle)
        finally:
            sock.close()
        assert first[0] == 200 and second[0] == 200
        assert (json.loads(first[2])["answers"]
                == json.loads(second[2])["answers"])

    def test_pipelined_requests_after_a_400_still_answered(self, server):
        """The acceptance-criteria regression: two pipelined requests
        after a 400 are answered correctly (the error path must consume
        the request body or the tail would be parsed as a request)."""
        bad = b'{"query": not json at all}'
        sock, handle = _connect(server)
        try:
            sock.sendall(_post(bad) + _post(QUERY_BODY)
                         + _post(QUERY_BODY))
            statuses = [_read_response(handle) for _ in range(3)]
        finally:
            sock.close()
        assert statuses[0][0] == 400
        assert statuses[1][0] == 200 and statuses[2][0] == 200
        assert json.loads(statuses[1][2])["answers"] \
            == json.loads(statuses[2][2])["answers"]

    def test_post_404_with_body_keeps_connection_usable(self, server):
        """A POST to an unknown path used to leave its body unread —
        under keep-alive those bytes desynced the next request."""
        sock, handle = _connect(server)
        try:
            sock.sendall(_post(QUERY_BODY, path="/nope")
                         + _post(QUERY_BODY))
            first = _read_response(handle)
            second = _read_response(handle)
        finally:
            sock.close()
        assert first[0] == 404
        assert second[0] == 200
        assert json.loads(second[2])["complete"] is True

    def test_short_read_client_is_not_truncated(self, server):
        """A slow client delivering the body in pieces must not produce
        a spurious 400 (regression: a single ``rfile.read(length)``
        returned short and truncated the JSON)."""
        head = _post(QUERY_BODY)[:-len(QUERY_BODY)]
        sock, handle = _connect(server)
        try:
            sock.sendall(head)
            sock.sendall(QUERY_BODY[:7])
            time.sleep(0.2)  # force two separate TCP segments
            sock.sendall(QUERY_BODY[7:])
            status, _, body = _read_response(handle)
        finally:
            sock.close()
        assert status == 200
        assert json.loads(body)["complete"] is True

    def test_oversized_body_is_rejected_and_connection_closed(self, server):
        sock, handle = _connect(server)
        try:
            declared = (2 << 20)
            lines = (f"POST /query HTTP/1.1\r\nHost: t\r\n"
                     f"Content-Length: {declared}\r\n\r\n")
            sock.sendall(lines.encode())
            status, headers, _ = _read_response(handle)
            assert status in (400, 413)
            assert headers.get("connection") == "close"
            assert handle.read(1) == b""  # server closed: never drained
        finally:
            sock.close()

    def test_empty_and_malformed_content_length_are_400(self, server):
        sock, handle = _connect(server)
        try:
            sock.sendall(b"POST /query HTTP/1.1\r\nHost: t\r\n"
                         b"Content-Length: 0\r\n\r\n")
            status, _, body = _read_response(handle)
            assert status == 400
            assert b"empty request body" in body
        finally:
            sock.close()


class TestClientDisconnect:
    def test_disconnect_mid_response_counts_and_survives(
            self, govtrack_engine):
        """The client vanishes while its query runs; the write fails
        with a reset, the handler survives, the counter increments, and
        the server answers the next request normally."""
        serving = ServingEngine(govtrack_engine, ServingConfig(
            workers=1, cache_bytes=0))
        gate = threading.Event()
        inner = govtrack_engine.query

        def gated_query(query, k=None, **kwargs):
            assert gate.wait(timeout=30)
            return inner(query, k=k, **kwargs)

        serving.engine = _EngineProxy(govtrack_engine, gated_query)
        http = serve(serving, port=0).serve_background()
        counter = serving.registry.counter("sama_client_disconnects_total")
        before = counter.value
        try:
            sock = socket.create_connection((http.host, http.port),
                                            timeout=30)
            sock.sendall(_post(QUERY_BODY))
            for _ in range(200):  # the worker must hold the request
                if serving.in_flight >= 1:
                    break
                time.sleep(0.01)
            # SO_LINGER(0): close sends RST, so the server's write hits
            # ECONNRESET instead of buffering into a dead socket.
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.close()
            gate.set()
            deadline = time.monotonic() + 30
            while counter.value < before + 1:
                assert time.monotonic() < deadline, \
                    "disconnect was never counted"
                time.sleep(0.02)
            # The server is still alive and framing correctly.
            client = ServingClient(http.url, timeout=30)
            assert client.health()["status"] == "ok"
            assert client.query(QUERY, k=3)["complete"] is True
        finally:
            gate.set()
            http.shutdown(close_engine=False)

    def test_asyncio_disconnect_mid_response_counts(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(
            workers=1, cache_bytes=0))
        gate = threading.Event()
        inner = govtrack_engine.query

        def gated_query(query, k=None, **kwargs):
            assert gate.wait(timeout=30)
            return inner(query, k=k, **kwargs)

        serving.engine = _EngineProxy(govtrack_engine, gated_query)
        http = serve_async(serving, port=0).serve_background()
        counter = serving.registry.counter("sama_client_disconnects_total")
        before = counter.value
        try:
            sock = socket.create_connection((http.host, http.port),
                                            timeout=30)
            sock.sendall(_post(QUERY_BODY))
            for _ in range(200):
                if serving.in_flight >= 1:
                    break
                time.sleep(0.01)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
            sock.close()
            gate.set()
            deadline = time.monotonic() + 30
            while counter.value < before + 1:
                assert time.monotonic() < deadline, \
                    "disconnect was never counted"
                time.sleep(0.02)
            client = ServingClient(http.url, timeout=30)
            assert client.query(QUERY, k=3)["complete"] is True
        finally:
            gate.set()
            http.shutdown(close_engine=False)


class TestSingleFlight:
    WAITERS = 8

    def test_concurrent_identical_queries_coalesce_to_one_computation(
            self, govtrack_engine):
        """N identical cold queries → exactly 1 engine call, N−1
        coalesced waiters, byte-identical payloads (the acceptance
        criterion, verified at the HTTP layer)."""
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        calls = []
        gate = threading.Event()
        inner = govtrack_engine.query

        def counted_query(query, k=None, **kwargs):
            calls.append(1)
            assert gate.wait(timeout=30)
            return inner(query, k=k, **kwargs)

        serving.engine = _EngineProxy(govtrack_engine, counted_query)
        http = serve_async(serving, port=0).serve_background()
        bodies: "list[bytes]" = []
        errors: "list[Exception]" = []
        lock = threading.Lock()

        def worker():
            try:
                sock, handle = _connect(http)
                try:
                    sock.sendall(_post(QUERY_BODY))
                    status, _, body = _read_response(handle)
                    assert status == 200, body
                    with lock:
                        bodies.append(body)
                finally:
                    sock.close()
            except Exception as exc:
                with lock:
                    errors.append(exc)

        try:
            threads = [threading.Thread(target=worker)
                       for _ in range(self.WAITERS)]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 30
            # Wait until the leader is computing and every follower has
            # coalesced onto its future — then release the engine.
            while (http.flight.coalesced < self.WAITERS - 1
                   or not calls):
                assert time.monotonic() < deadline, (
                    f"coalesced={http.flight.coalesced}, "
                    f"calls={len(calls)}")
                time.sleep(0.01)
            gate.set()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, errors[:2]
            assert len(calls) == 1, "engine computed more than once"
            assert len(bodies) == self.WAITERS
            assert len(set(bodies)) == 1, \
                "coalesced responses are not bit-identical"
            assert http.flight.coalesced == self.WAITERS - 1
            stats = http.stats_payload()
            assert stats["singleflight"]["coalesced"] == self.WAITERS - 1
            assert stats["singleflight"]["in_flight_keys"] == 0
        finally:
            gate.set()
            http.shutdown(close_engine=False)

    def test_explicit_deadline_bypasses_coalescing(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(
            workers=2, cache_bytes=0))
        http = serve_async(serving, port=0).serve_background()
        try:
            client = ServingClient(http.url, timeout=30)
            client.query(QUERY, k=5, deadline_ms=60_000)
            client.query(QUERY, k=5, deadline_ms=60_000)
            assert http.flight.leaders == 0
            assert http.flight.coalesced == 0
        finally:
            http.shutdown(close_engine=False)

    def test_singleflight_waiters_metric_is_exported(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0).serve_background()
        try:
            client = ServingClient(http.url, timeout=30)
            client.query(QUERY, k=4)
            text = serving.render_metrics()
            assert "sama_singleflight_waiters_total" in text
            assert "sama_singleflight_leaders_total" in text
        finally:
            http.shutdown(close_engine=False)


class TestTenantQuotas:
    def test_over_quota_is_429_with_retry_after(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0, tenant_rate=0.001,
                           tenant_burst=2.0).serve_background()
        try:
            client = ServingClient(http.url, timeout=30, api_key="alice")
            client.query(QUERY, k=3)
            client.query(QUERY, k=3)
            with pytest.raises(QuotaExceededError) as excinfo:
                client.query(QUERY, k=3)
            assert excinfo.value.tenant == "alice"
            assert excinfo.value.retry_after_s > 0
            # Another tenant's bucket is untouched.
            other = ServingClient(http.url, timeout=30, api_key="bob")
            assert other.query(QUERY, k=3)["complete"] is True
            stats = http.stats_payload()
            assert stats["tenants"]["alice"]["throttled"] == 1
            assert stats["tenants"]["alice"]["requests"] == 3
            assert stats["tenants"]["bob"]["throttled"] == 0
        finally:
            http.shutdown(close_engine=False)

    def test_retry_after_header_is_set(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0, tenant_rate=0.001,
                           tenant_burst=1.0).serve_background()
        try:
            sock, handle = _connect(http)
            try:
                sock.sendall(_post(QUERY_BODY,
                                   headers={"X-API-Key": "carol"}))
                status, _, _ = _read_response(handle)
                assert status == 200
                sock.sendall(_post(QUERY_BODY,
                                   headers={"X-API-Key": "carol"}))
                status, headers, body = _read_response(handle)
                assert status == 429
                assert int(headers["retry-after"]) >= 1
                assert json.loads(body)["error"] == "QuotaExceededError"
            finally:
                sock.close()
        finally:
            http.shutdown(close_engine=False)

    def test_api_key_allowlist_rejects_unknown_tenants(
            self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0,
                           api_keys={"alice"}).serve_background()
        try:
            good = ServingClient(http.url, timeout=30, api_key="alice")
            assert good.query(QUERY, k=3)["complete"] is True
            sock, handle = _connect(http)
            try:
                sock.sendall(_post(QUERY_BODY,
                                   headers={"X-API-Key": "mallory"}))
                status, _, _ = _read_response(handle)
                assert status == 403
            finally:
                sock.close()
        finally:
            http.shutdown(close_engine=False)

    def test_token_bucket_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=2.0, now=0.0)
        assert bucket.acquire(now=0.0) is None
        assert bucket.acquire(now=0.0) is None
        retry = bucket.acquire(now=0.0)
        assert retry == pytest.approx(0.5)
        # Half a second later one token has refilled.
        assert bucket.acquire(now=0.5) is None
        assert bucket.acquire(now=0.5) == pytest.approx(0.5)
        assert bucket.requests == 5 and bucket.throttled == 2

    def test_quotas_disabled_counts_but_never_throttles(self):
        quotas = TenantQuotas(rate=None)
        for _ in range(100):
            quotas.admit("t")
        snap = quotas.snapshot()
        assert snap["t"] == {"requests": 100, "throttled": 0}


class TestAsyncLifecycle:
    def test_bounded_backlog_refuses_extra_connections(
            self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0,
                           max_connections=1).serve_background()
        try:
            first, _h = _connect(http)  # parks one connection
            try:
                deadline = time.monotonic() + 10
                while http.connections.active < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                second, handle = _connect(http)
                try:
                    second.sendall(_get("/healthz"))
                    status, headers, _ = _read_response(handle)
                    assert status == 503
                    assert headers.get("connection") == "close"
                finally:
                    second.close()
                assert http.connections.rejected >= 1
            finally:
                first.close()
        finally:
            http.shutdown(close_engine=False)

    def test_drain_flips_healthz_and_refuses_queries(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0).serve_background()
        try:
            serving.start_drain()
            sock, handle = _connect(http)
            try:
                sock.sendall(_get("/healthz"))
                status, _, body = _read_response(handle)
                assert status == 503
                assert json.loads(body)["status"] == "draining"
                sock.sendall(_post(QUERY_BODY))
                status, headers, _ = _read_response(handle)
                assert status == 503
                assert "retry-after" in headers
            finally:
                sock.close()
        finally:
            http.shutdown(close_engine=False)

    def test_graceful_shutdown_reports_drained(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0).serve_background()
        client = ServingClient(http.url, timeout=30)
        assert client.query(QUERY, k=3)["complete"] is True
        assert http.graceful_shutdown(drain_deadline_s=5.0,
                                      close_engine=False) is True

    def test_stats_and_metrics_roundtrip(self, govtrack_engine):
        from repro.obs import parse_prometheus

        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0).serve_background()
        try:
            client = ServingClient(http.url, timeout=30)
            client.query(QUERY, k=3)
            stats = client.stats()
            assert stats["frontend"] == "asyncio"
            assert stats["connections"]["accepted"] >= 1
            samples = parse_prometheus(serving.render_metrics())
            assert any(name.startswith("sama_async_connections")
                       for name in samples)
        finally:
            http.shutdown(close_engine=False)

    def test_get_unknown_path_404_keeps_connection(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0).serve_background()
        try:
            sock, handle = _connect(http)
            try:
                sock.sendall(_get("/nope") + _get("/healthz"))
                first = _read_response(handle)
                second = _read_response(handle)
                assert first[0] == 404 and second[0] == 200
            finally:
                sock.close()
        finally:
            http.shutdown(close_engine=False)

    def test_malformed_request_line_is_400_and_closed(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
        http = serve_async(serving, port=0).serve_background()
        try:
            sock, handle = _connect(http)
            try:
                sock.sendall(b"NONSENSE\r\n\r\n")
                status, headers, _ = _read_response(handle)
                assert status == 400
                assert headers.get("connection") == "close"
            finally:
                sock.close()
        finally:
            http.shutdown(close_engine=False)


class TestSingleFlightUnit:
    def test_lead_then_follow_then_finish(self):
        import asyncio

        async def scenario():
            flight = SingleFlight()
            is_leader, future = flight.lead_or_follow("k")
            assert is_leader
            follower, same = flight.lead_or_follow("k")
            assert not follower and same is future
            flight.finish("k", future, result=("ok",))
            assert await same == ("ok",)
            assert flight.leaders == 1 and flight.coalesced == 1
            # The key is free again: the next request leads anew.
            again, _ = flight.lead_or_follow("k")
            assert again

        asyncio.run(scenario())


class _EngineProxy:
    """The wrapped engine with only ``query`` replaced."""

    def __init__(self, engine, query):
        self._engine = engine
        self.query = query

    def __getattr__(self, name):
        return getattr(self._engine, name)
