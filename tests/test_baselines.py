"""Unit tests for the three competitor systems (SAPPER, BOUNDED, DOGMA)."""

import pytest

from repro.baselines import (BoundedMatcher, DogmaMatcher, GraphMatch,
                             SapperMatcher, connected_query_order)
from repro.rdf.graph import DataGraph, QueryGraph
from repro.rdf.terms import Literal, URI, Variable


GOV = "http://example.org/govtrack/"


def label_map(graph, match):
    return {qn: graph.label_of(dn).value.rsplit("/", 1)[-1]
            for qn, dn in match.node_map}


class TestGraphMatch:
    def test_of_and_mapping(self):
        match = GraphMatch.of({1: 10, 0: 20}, cost=2.0)
        assert match.mapping() == {0: 20, 1: 10}
        assert match.node_map == ((0, 20), (1, 10))
        assert match.cost == 2.0

    def test_data_nodes(self):
        assert GraphMatch.of({0: 5, 1: 6}).data_nodes() == {5, 6}

    def test_bindings(self, govtrack, q1):
        matcher = DogmaMatcher(govtrack)
        match = matcher.search(q1)[0]
        bindings = match.bindings(q1, govtrack)
        assert bindings[Variable("v2")].value.endswith("B1432")


class TestConnectedOrder:
    def test_constants_first(self, q1):
        order = connected_query_order(q1)
        first_label = q1.label_of(order[0])
        assert not isinstance(first_label, Variable)

    def test_connectivity_maintained(self, q1):
        order = connected_query_order(q1)
        placed = {order[0]}
        for node in order[1:]:
            neighbours = {d for _l, d in q1.out_edges(node)}
            neighbours.update(s for _l, s in q1.in_edges(node))
            assert neighbours & placed
            placed.add(node)

    def test_empty_query(self):
        assert connected_query_order(QueryGraph()) == []


class TestDogma:
    def test_exactly_one_q1_match(self, govtrack, q1):
        matches = DogmaMatcher(govtrack).search(q1)
        assert len(matches) == 1
        mapping = label_map(govtrack, matches[0])
        assert "CarlaBunes" in mapping.values()
        assert "PierceDickes" in mapping.values()

    def test_no_match_for_q2(self, govtrack, q2):
        """Q2 has a variable edge CB -> bill; no direct edge exists."""
        assert DogmaMatcher(govtrack).search(q2) == []

    def test_cost_always_zero(self, govtrack, q1):
        assert all(m.cost == 0 for m in DogmaMatcher(govtrack).search(q1))

    def test_limit(self, govtrack):
        q = QueryGraph()
        q.add_triple("?v", GOV + "gender", Literal("Male"))
        matcher = DogmaMatcher(govtrack)
        assert len(matcher.search(q)) == 4
        assert len(matcher.search(q, limit=2)) == 2

    def test_distance_bound_is_admissible(self, govtrack):
        """Cluster-distance is a lower bound on real distance."""
        from collections import deque
        matcher = DogmaMatcher(govtrack, cluster_size=4)
        # Undirected BFS ground truth.
        nodes = list(govtrack.nodes())

        def real_distance(start, goal):
            seen = {start}
            queue = deque([(start, 0)])
            while queue:
                node, depth = queue.popleft()
                if node == goal:
                    return depth
                for neighbour in matcher._undirected_neighbours(node):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        queue.append((neighbour, depth + 1))
            return float("inf")

        for a in nodes[:6]:
            for b in nodes[:6]:
                assert matcher.distance_lower_bound(a, b) <= real_distance(a, b)

    def test_cluster_size_validation(self, govtrack):
        with pytest.raises(ValueError):
            DogmaMatcher(govtrack, cluster_size=0)

    def test_match_count_helper(self, govtrack, q1):
        assert DogmaMatcher(govtrack).match_count(q1) == 1


class TestSapper:
    def test_includes_exact_match_at_cost_zero(self, govtrack, q1):
        matches = SapperMatcher(govtrack).search(q1)
        assert matches[0].cost == 0

    def test_finds_more_than_dogma(self, govtrack, q1):
        """Fig. 8: approximate systems find more matches."""
        sapper = len(SapperMatcher(govtrack).search(q1))
        dogma = len(DogmaMatcher(govtrack).search(q1))
        assert sapper > dogma

    def test_budget_zero_equals_exact(self, govtrack, q1):
        strict = SapperMatcher(govtrack, edge_budget=0).search(q1)
        dogma = DogmaMatcher(govtrack).search(q1)
        assert {m.node_map for m in strict} == {m.node_map for m in dogma}

    def test_budget_grows_results(self, govtrack, q1):
        few = len(SapperMatcher(govtrack, edge_budget=0).search(q1))
        more = len(SapperMatcher(govtrack, edge_budget=1).search(q1))
        assert more >= few

    def test_q2_approximate_match(self, govtrack, q2):
        """SAPPER recovers Q2's intended answer with one missing edge."""
        matches = SapperMatcher(govtrack).search(q2)
        assert matches
        assert all(m.cost <= 1 for m in matches)
        mapped = [label_map(govtrack, m) for m in matches]
        assert any("B1432" in m.values() and "PierceDickes" in m.values()
                   for m in mapped)

    def test_sorted_by_cost(self, govtrack, q1):
        costs = [m.cost for m in SapperMatcher(govtrack).search(q1)]
        assert costs == sorted(costs)

    def test_negative_budget_rejected(self, govtrack):
        with pytest.raises(ValueError):
            SapperMatcher(govtrack, edge_budget=-1)


class TestBounded:
    def test_q1_exact_found(self, govtrack, q1):
        matches = BoundedMatcher(govtrack).search(q1)
        assert any("CarlaBunes" in label_map(govtrack, m).values()
                   for m in matches)

    def test_q2_multi_hop_edge(self, govtrack, q2):
        """Q2's ?e1 edge is satisfied by the 2-hop sponsor/aTo chain."""
        matches = BoundedMatcher(govtrack, hop_bound=2).search(q2)
        assert matches

    def test_hop_bound_one_is_direct_edges_only(self, govtrack, q2):
        assert BoundedMatcher(govtrack, hop_bound=1).search(q2) == []

    def test_simulation_relation_shrinks_to_fixpoint(self, govtrack, q1):
        matcher = BoundedMatcher(govtrack)
        relation = matcher.simulation(q1)
        # Every query node has candidates; constants map to themselves.
        for query_node, bucket in relation.items():
            assert bucket
        cb = next(n for n in q1.nodes()
                  if q1.label_of(n).value.endswith("CarlaBunes"))
        cb_data = govtrack.node_for(URI(GOV + "CarlaBunes"))
        assert relation[cb] == {cb_data}

    def test_unsatisfiable_collapses_to_empty(self, govtrack):
        q = QueryGraph()
        q.add_triple("?a", GOV + "gender", Literal("Unknown Gender"))
        matcher = BoundedMatcher(govtrack)
        assert all(not bucket for bucket in matcher.simulation(q).values())
        assert matcher.search(q) == []

    def test_match_relation_size(self, govtrack, q1):
        assert BoundedMatcher(govtrack).match_relation_size(q1) > 0

    def test_reachability_cache(self, govtrack):
        matcher = BoundedMatcher(govtrack, hop_bound=2)
        node = govtrack.node_for(URI(GOV + "CarlaBunes"))
        first = matcher.reachable_within(node)
        assert matcher.reachable_within(node) is first
        # CB reaches A0056 (1 hop) and B1432 (2 hops) but not HC (3 hops).
        labels = {govtrack.label_of(n).value.rsplit("/", 1)[-1]
                  for n in first}
        assert "A0056" in labels
        assert "B1432" in labels
        assert "Health Care" not in labels

    def test_hop_bound_validation(self, govtrack):
        with pytest.raises(ValueError):
            BoundedMatcher(govtrack, hop_bound=0)


class TestOrderingAcrossSystems:
    def test_fig8_ordering_on_approximate_query(self, govtrack, q2):
        """Sapper ≥ Bounded ≥ Dogma in matches on the relaxed query."""
        sapper = len(SapperMatcher(govtrack).search(q2))
        bounded = len(BoundedMatcher(govtrack).search(q2))
        dogma = len(DogmaMatcher(govtrack).search(q2))
        assert sapper >= bounded >= dogma
