"""Canonicalisation invariants behind the serving result cache.

The cache key must be *stable* under the two rewritings that preserve
query meaning — variable renaming and triple-pattern reordering — and
must *separate* queries that differ in any constant or in structure.
A false merge would serve one query's answers for another; a false
split only costs a cache miss.
"""

import random
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf.graph import QueryGraph
from repro.rdf.terms import URI, Variable
from repro.serving.canonical import cache_key, canonical_form

_locals = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=3)


@st.composite
def bgps(draw, max_triples=5, max_vars=4):
    """A small connected-ish BGP as a list of (s, p, o) terms."""
    n_vars = draw(st.integers(min_value=1, max_value=max_vars))
    variables = [Variable(f"v{i}") for i in range(n_vars)]
    constants = [URI("http://x/" + name)
                 for name in draw(st.lists(_locals, min_size=1, max_size=4,
                                           unique=True))]
    predicates = [URI("http://x/p/" + name)
                  for name in draw(st.lists(_locals, min_size=1, max_size=3,
                                            unique=True))]
    nodes = variables + constants
    n_triples = draw(st.integers(min_value=1, max_value=max_triples))
    triples = []
    for _ in range(n_triples):
        s = draw(st.sampled_from(nodes))
        p = draw(st.sampled_from(predicates))
        o = draw(st.sampled_from(nodes))
        if s != o:
            triples.append((s, p, o))
    if not any(isinstance(t, Variable) for row in triples for t in row):
        triples.append((variables[0], predicates[0], constants[0]))
    return triples


def _graph(triples) -> QueryGraph:
    graph = QueryGraph()
    for s, p, o in triples:
        graph.add_triple(s, p, o)
    return graph


def _renamed(triples, seed: int):
    """The same BGP under a random variable bijection + triple shuffle."""
    rng = random.Random(seed)
    variables = sorted({t for row in triples for t in row
                        if isinstance(t, Variable)})
    fresh = [Variable(f"renamed_{seed}_{i}") for i in range(len(variables))]
    rng.shuffle(fresh)
    mapping = dict(zip(variables, fresh))
    rewritten = [tuple(mapping.get(t, t) for t in row) for row in triples]
    rng.shuffle(rewritten)
    return rewritten


@settings(max_examples=150, deadline=None)
@given(bgps(), st.integers(min_value=0, max_value=2**32))
def test_invariant_under_renaming_and_reordering(triples, seed):
    original = canonical_form(_graph(triples))
    rewritten = canonical_form(_graph(_renamed(triples, seed)))
    assert original == rewritten


@settings(max_examples=100, deadline=None)
@given(bgps(), st.integers(min_value=0, max_value=2**32))
def test_constant_change_changes_form(triples, seed):
    rng = random.Random(seed)
    mutable = [i for i, row in enumerate(triples)
               if any(not isinstance(t, Variable) for t in row)]
    if not mutable:
        return
    i = rng.choice(mutable)
    row = list(triples[i])
    j = rng.choice([p for p, t in enumerate(row)
                    if not isinstance(t, Variable)])
    row[j] = URI("http://x/African_swallow")  # not in the generator pool
    mutated = triples[:i] + [tuple(row)] + triples[i + 1:]
    assert canonical_form(_graph(triples)) != canonical_form(_graph(mutated))


@settings(max_examples=100, deadline=None)
@given(bgps())
def test_extra_pattern_changes_form(triples):
    grown = triples + [(Variable("extra_var"),
                        URI("http://x/p/extra_edge"),
                        URI("http://x/extra_const"))]
    assert canonical_form(_graph(triples)) != canonical_form(_graph(grown))


@settings(max_examples=60, deadline=None)
@given(bgps())
def test_variable_sharing_is_distinguished(triples):
    """Splitting one shared variable into two must change the form."""
    counts = {}
    for row in triples:
        for t in row:
            if isinstance(t, Variable):
                counts[t] = counts.get(t, 0) + 1
    shared = [v for v, n in counts.items() if n >= 2]
    if not shared:
        return
    victim = shared[0]
    replaced = False
    rewritten = []
    for row in rewritten_rows(triples, victim):
        rewritten.append(row)
        replaced = True
    assert replaced
    assert canonical_form(_graph(triples)) != canonical_form(_graph(rewritten))


def rewritten_rows(triples, victim):
    """Replace the *first* occurrence of ``victim`` with a fresh variable."""
    done = False
    for row in triples:
        if not done and victim in row:
            idx = row.index(victim)
            row = row[:idx] + (Variable("split_twin"),) + row[idx + 1:]
            done = True
        yield row


# -- deterministic cases over real SPARQL text ------------------------------

_Q = """
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?s ?p WHERE {
    ?s ub:advisor ?p .
    ?p ub:worksFor ub:Department1 .
    ?s ub:memberOf ub:Department0 .
}"""

_Q_RENAMED = """
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?student ?prof WHERE {
    ?student ub:memberOf ub:Department0 .
    ?prof ub:worksFor ub:Department1 .
    ?student ub:advisor ?prof .
}"""

_Q_DIFFERENT = """
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?s ?p WHERE {
    ?s ub:advisor ?p .
    ?p ub:worksFor ub:Department0 .
    ?s ub:memberOf ub:Department1 .
}"""


def test_sparql_text_renaming_and_reordering():
    assert canonical_form(_Q) == canonical_form(_Q_RENAMED)


def test_sparql_text_constant_swap_distinguished():
    # Same shape, but the two department constants trade places.
    assert canonical_form(_Q) != canonical_form(_Q_DIFFERENT)


def test_canonical_names_are_normalised():
    form = canonical_form(_Q)
    assert "?s" not in form.split() and "?student" not in form.split()
    assert "?_0" in form


def test_cache_key_varies_with_k_and_epoch():
    keys = {cache_key(_Q, k, epoch) for k in (5, 10) for epoch in (0, 1)}
    assert len(keys) == 4
    assert cache_key(_Q, 10, 3) == cache_key(_Q_RENAMED, 10, 3)
