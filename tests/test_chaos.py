"""Chaos harness: fault-isolated scatter-gather under seeded fault plans.

The contract under test is the tentpole of the resilience work: a
sharded index keeps answering when shards die.  A hard-failed shard
yields a *partial* result naming the lost shards (``SHARD_FAILED``)
whose rankings are bit-identical to what the surviving shards alone
would produce; circuit breakers take the dead shard out of rotation so
it costs one probe per cooldown window instead of a storage timeout
per query; hedged dispatch hides stragglers without touching rankings;
and the serving layer drains gracefully on shutdown.  Every fault here
comes from a seeded :class:`FaultPlan`, so each failure is replayable.
"""

from __future__ import annotations

import os
import shutil
import time
from concurrent.futures import Future

import pytest

from repro.engine import EngineConfig, SamaEngine
from repro.index import (IndexCorruptError, PathIndex, ShardedIndex,
                         build_index, build_sharded_index, is_sharded_dir)
from repro.resilience import (BreakerConfig, FaultPlan, ShardBreaker,
                              ShardFaultSet, ShardHealth, install, uninstall)
from repro.resilience.budget import DegradationCause
from repro.resilience.errors import (OverloadedError, StorageError,
                                     TransientStorageError)
from repro.resilience.health import CLOSED, HALF_OPEN, OPEN, QUARANTINED
from repro.resilience.retry import DEFAULT_RETRY, JITTERED_RETRY, RetryPolicy
from repro.serving import ServingConfig, ServingEngine
from repro.storage.atomic import atomic_write_json, sweep_tmp_debris

SHARDS = 4

Q1_SPARQL = """
    PREFIX gov: <http://example.org/govtrack/>
    SELECT ?v1 ?v2 ?v3 WHERE {
        gov:CarlaBunes gov:sponsor ?v1 .
        ?v1 gov:aTo ?v2 .
        ?v2 gov:subject "Health Care" .
        ?v3 gov:sponsor ?v2 .
        ?v3 gov:gender "Male" .
    }"""


def ranking(result) -> list:
    return [(round(answer.score, 9), str(answer)) for answer in result]


def shard_failed_reasons(result):
    return [reason for reason in result.reasons
            if reason.cause is DegradationCause.SHARD_FAILED]


def open_engine(directory, recover: bool = False, **overrides) -> SamaEngine:
    """A chaos-ready engine: scatter engages on the tiny GovTrack graph."""
    config = EngineConfig(scatter_threshold=2, workers=4, **overrides)
    return SamaEngine.open(directory, config=config, recover=recover)


@pytest.fixture(scope="module")
def chaos_dir(tmp_path_factory, govtrack):
    """A persistent 4-shard GovTrack index shared by this module."""
    directory = tmp_path_factory.mktemp("chaos") / "sharded4"
    index, _ = build_sharded_index(govtrack, str(directory), shards=SHARDS)
    index.close()
    return str(directory)


@pytest.fixture(scope="module")
def baseline(chaos_dir, q1, q2):
    """Fault-free rankings of the module's canonical queries."""
    with open_engine(chaos_dir) as engine:
        return {"q1": ranking(engine.query(q1, k=10)),
                "q2": ranking(engine.query(q2, k=10))}


def damaged_copy(source: str, destination, shard: int = 1) -> str:
    """Copy a sharded index and tear one shard's metadata."""
    destination = str(destination)
    shutil.copytree(source, destination)
    manifest = os.path.join(destination, f"shard-{shard:02d}", "maps.json")
    with open(manifest, "w") as handle:
        handle.write('{"torn": ')  # a crash mid-write, pre-atomic-rename
    return destination


# -- fault isolation: dead shards degrade, never fail -------------------------


class TestFaultIsolation:
    def test_dead_shard_yields_shard_failed_partial(self, chaos_dir, q1):
        with open_engine(chaos_dir) as engine:
            faults = install(engine, FaultPlan(fail_shards=(1,), seed=7))
            engine.cold_cache()       # warm pages never touch the injector
            result = engine.query(q1, k=10)
            assert faults.failures_injected > 0
            assert not result.complete
            reasons = shard_failed_reasons(result)
            assert reasons and "1" in reasons[0].detail

    def test_rankings_equal_surviving_shards_reference(
            self, chaos_dir, tmp_path, q1):
        # The reference is an index opened *around* shard 1 (quarantined
        # at open over a damaged copy): its candidate set is exactly
        # "every shard but 1", which is what fault isolation must match.
        reference_dir = damaged_copy(chaos_dir, tmp_path / "ref")
        with open_engine(reference_dir, recover=True) as reference, \
                open_engine(chaos_dir) as engine:
            install(engine, FaultPlan(fail_shards=(1,), seed=7))
            engine.cold_cache()
            faulted = engine.query(q1, k=10)
            expected = reference.query(q1, k=10)
            assert not faulted.complete
            assert ranking(faulted) == ranking(expected)

    def test_no_fault_rankings_bit_identical_to_unsharded(
            self, chaos_dir, govtrack_engine, q1, q2, baseline):
        for query, key in ((q1, "q1"), (q2, "q2")):
            sharded = baseline[key]
            unsharded = ranking(govtrack_engine.query(query, k=10))
            assert sharded == unsharded

    def test_no_fault_result_is_complete(self, chaos_dir, q1):
        with open_engine(chaos_dir) as engine:
            result = engine.query(q1, k=10)
            assert result.complete and not shard_failed_reasons(result)

    def test_unsharded_index_still_propagates(self, tmp_path, govtrack, q1):
        # Fault isolation is a sharded-index contract: a single-file
        # index has no surviving shards to fall back on, so persistent
        # storage failure must surface as the typed error, not as a
        # silently empty partial result.
        index, _ = build_index(govtrack, str(tmp_path / "flat"))
        index.close()
        with SamaEngine.open(str(tmp_path / "flat")) as engine:
            install(engine, FaultPlan(read_failure_rate=1.0, seed=3))
            engine.cold_cache()
            with pytest.raises(StorageError):
                engine.query(q1, k=10)

    def test_availability_under_one_dead_shard(self, chaos_dir, q1, q2):
        # The ISSUE acceptance bar: 1/4 shards hard-down, >= 99% of
        # queries still answer (degraded, never raising).
        with open_engine(chaos_dir) as engine:
            install(engine, FaultPlan(fail_shards=(1,), seed=7))
            attempts, answered, degraded = 0, 0, 0
            for round_no in range(10):
                for query in (q1, q2):
                    engine.cold_cache()
                    attempts += 1
                    result = engine.query(query, k=10)
                    answered += 1
                    degraded += 0 if result.complete else 1
            assert answered / attempts >= 0.99
            assert degraded > 0


# -- deterministic shard-scoped fault plans -----------------------------------


class TestShardFaultPlans:
    def test_failed_shard_set_is_seeded_and_stable(self):
        plan = FaultPlan(seed=11, shard_fail_rate=0.5)
        again = FaultPlan(seed=11, shard_fail_rate=0.5)
        assert plan.failed_shards(16) == again.failed_shards(16)
        assert FaultPlan(seed=11, shard_fail_rate=1.0).failed_shards(4) \
            == (0, 1, 2, 3)
        assert FaultPlan(seed=11).failed_shards(4) == ()

    def test_explicit_fail_shards_override_rate(self):
        plan = FaultPlan(fail_shards=(2,))
        assert plan.shard_is_failed(2) and not plan.shard_is_failed(0)

    def test_install_on_sharded_returns_fault_set(self, chaos_dir):
        with open_engine(chaos_dir) as engine:
            faults = install(engine, FaultPlan(fail_shards=(1,)))
            assert isinstance(faults, ShardFaultSet)
            assert len(faults) == SHARDS
            assert [injector.shard for injector in faults] == [0, 1, 2, 3]
            assert faults.reads == faults.failures_injected == 0
            uninstall(engine)
            assert all(shard.page_store.fault_injector is None
                       for shard in engine.index.shards)

    def test_dead_shard_ignores_max_failures(self):
        plan = FaultPlan(fail_shards=(0,), max_failures=1)
        injector = plan.injector(shard=0)
        for _ in range(3):   # a dead partition never heals into reads
            with pytest.raises(TransientStorageError):
                injector.on_read(0, b"page")
        assert injector.failures_injected == 3

    def test_slow_shard_sleeps_per_read(self):
        naps = []
        plan = FaultPlan(slow_shards=(2,), slow_shard_ms=40.0)
        injector = plan.injector(shard=2)
        injector._sleep = naps.append
        assert injector.on_read(0, b"page") == b"page"
        assert naps == [0.04] and injector.slow_reads_injected == 1
        untouched = plan.injector(shard=0)
        untouched._sleep = naps.append
        untouched.on_read(0, b"page")
        assert len(naps) == 1


# -- the circuit breaker state machine ----------------------------------------


class TestShardBreaker:
    CONFIG = BreakerConfig(failure_threshold=3, cooldown_s=2.0,
                           backoff_multiplier=2.0, max_cooldown_s=10.0,
                           jitter=0.0)

    def test_trips_only_on_consecutive_failures(self):
        breaker = ShardBreaker(self.CONFIG)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)          # resets the streak
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state == CLOSED and breaker.allow(0.5)
        breaker.record_failure(0.5)
        assert breaker.state == OPEN and breaker.trips_total == 1
        assert not breaker.allow(0.6)

    def test_half_open_admits_one_probe_then_closes(self):
        breaker = ShardBreaker(self.CONFIG)
        for moment in (0.0, 0.1, 0.2):
            breaker.record_failure(moment)
        assert breaker.allow(3.0)            # past cooldown: the probe
        assert breaker.state == HALF_OPEN and breaker.probes_total == 1
        assert not breaker.allow(3.0)        # only one probe at a time
        breaker.record_success(3.1)
        assert breaker.state == CLOSED and breaker.allow(3.2)

    def test_failed_probe_backs_off_exponentially_capped(self):
        breaker = ShardBreaker(self.CONFIG)
        for moment in (0.0, 0.1, 0.2):
            breaker.record_failure(moment)
        now = 0.2
        for expected in (4.0, 8.0, 10.0, 10.0):   # doubled, then capped
            now = breaker.retry_at + 0.01
            assert breaker.allow(now)
            breaker.record_failure(now)
            assert breaker.state == OPEN
            assert breaker.cooldown_s == expected
        assert breaker.allow(breaker.retry_at + 0.01)
        breaker.record_success(now)
        assert breaker.cooldown_s == self.CONFIG.cooldown_s

    def test_jitter_is_seeded_per_shard(self):
        config = BreakerConfig(failure_threshold=1, jitter=0.5, seed=9)
        first, second = ShardBreaker(config, 3), ShardBreaker(config, 3)
        other = ShardBreaker(config, 4)
        for breaker in (first, second, other):
            breaker.record_failure(0.0)
        assert first.retry_at == second.retry_at
        assert first.retry_at != other.retry_at

    def test_quarantine_outranks_everything_until_readmit(self):
        breaker = ShardBreaker(self.CONFIG)
        breaker.quarantine("manifest torn")
        assert not breaker.allow(1e9)
        breaker.record_success(0.0)          # success does not readmit
        assert breaker.state == QUARANTINED
        breaker.record_failure(0.1)          # nor do failures re-trip
        assert breaker.state == QUARANTINED and breaker.trips_total == 0
        breaker.readmit()
        assert breaker.state == CLOSED and breaker.allow(0.2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_s=-1.0)


class TestShardHealth:
    def test_board_tracks_degraded_and_failed_shards(self):
        clock = FakeClock()
        health = ShardHealth(3, BreakerConfig(failure_threshold=1),
                             clock=clock)
        assert not health.degraded and health.failed_shards() == []
        health.record_failure(1, "boom")
        assert health.degraded
        assert health.state(1) == OPEN and health.failed_shards() == [1]
        health.quarantine(2, "damaged at open")
        assert health.failed_shards() == [1, 2]
        assert health.quarantined_shards() == [(2, "damaged at open")]
        health.readmit(2)
        clock.advance(60.0)
        assert health.allow(1)               # the probe
        health.record_success(1)
        assert not health.degraded

    def test_snapshot_is_json_ready(self):
        health = ShardHealth(2)
        health.record_failure(0, "io timeout")
        health.note_hedge(1)
        rows = health.snapshot()
        assert [row["shard"] for row in rows] == [0, 1]
        assert rows[0]["failures"] == 1
        assert rows[0]["last_error"] == "io timeout"
        assert rows[1]["hedges"] == 1

    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            ShardHealth(0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- breaker integration: quarantine beats paying the failure again -----------


class TestBreakerIntegration:
    def test_repeated_failures_trip_the_breaker_open(self, chaos_dir, q1):
        with open_engine(chaos_dir) as engine:
            faults = install(engine, FaultPlan(fail_shards=(1,), seed=7))
            for _ in range(3):
                engine.cold_cache()
                engine.query(q1, k=10)
            health = engine.index.health
            assert health.state(1) == OPEN
            assert health.snapshot()[1]["trips"] >= 1

            # While open, dispatch skips the shard: still degraded, but
            # the dead shard is not paid for again (no new reads).
            paid = faults[1].failures_injected
            engine.cold_cache()
            result = engine.query(q1, k=10)
            assert shard_failed_reasons(result)
            assert faults[1].failures_injected == paid

    def test_half_open_probe_readmits_recovered_shard(self, chaos_dir, q1,
                                                      baseline):
        with open_engine(chaos_dir) as engine:
            install(engine, FaultPlan(fail_shards=(1,), seed=7))
            for _ in range(3):
                engine.cold_cache()
                engine.query(q1, k=10)
            health = engine.index.health
            assert health.state(1) == OPEN

            uninstall(engine)                 # the shard "comes back"
            health.clock = lambda: time.monotonic() + 3600.0
            engine.cold_cache()
            result = engine.query(q1, k=10)   # the admitted probe succeeds
            assert health.state(1) == CLOSED
            assert result.complete
            assert ranking(result) == baseline["q1"]


# -- hedged dispatch ----------------------------------------------------------


class TestHedgedDispatch:
    def test_hedging_fires_and_preserves_rankings(self, chaos_dir, q1,
                                                  baseline):
        with open_engine(chaos_dir, hedge_ms=20.0) as engine:
            install(engine, FaultPlan(slow_shards=(2,), slow_shard_ms=60.0))
            engine.cold_cache()
            result = engine.query(q1, k=10)
            hedges = sum(row["hedges"]
                         for row in engine.index.health.snapshot())
            assert hedges >= 1
            assert result.complete
            assert ranking(result) == baseline["q1"]

    def test_hedging_idle_without_stragglers(self, chaos_dir, q1, baseline):
        with open_engine(chaos_dir, hedge_ms=30_000.0) as engine:
            result = engine.query(q1, k=10)
            assert sum(row["hedges"]
                       for row in engine.index.health.snapshot()) == 0
            assert result.complete and ranking(result) == baseline["q1"]


# -- startup recovery scan and quarantine -------------------------------------


class TestQuarantineOpen:
    def test_default_open_raises_on_damage(self, chaos_dir, tmp_path):
        directory = damaged_copy(chaos_dir, tmp_path / "strict")
        with pytest.raises(IndexCorruptError):
            ShardedIndex.open(directory)

    def test_recover_open_quarantines_and_degrades(self, chaos_dir,
                                                   tmp_path, q1):
        directory = damaged_copy(chaos_dir, tmp_path / "recover")
        with open_engine(directory, recover=True) as engine:
            quarantined = engine.index.health.quarantined_shards()
            assert [shard for shard, _ in quarantined] == [1]
            result = engine.query(q1, k=10)
            assert not result.complete
            reasons = shard_failed_reasons(result)
            assert reasons and "1" in reasons[0].detail

    def test_probe_quarantines_corrupt_records(self, chaos_dir, tmp_path):
        directory = str(tmp_path / "rotten")
        shutil.copytree(chaos_dir, directory)
        log = os.path.join(directory, "shard-02", "paths.log")
        size = os.path.getsize(log)
        with open(log, "wb") as handle:     # bit rot over the whole shard
            handle.write(b"\xa5" * size)
        index = ShardedIndex.open(directory, on_damage="quarantine")
        try:
            assert [shard for shard, _
                    in index.health.quarantined_shards()] == [2]
        finally:
            index.close()

    def test_every_shard_damaged_is_fatal_even_recovering(self, chaos_dir,
                                                          tmp_path):
        directory = str(tmp_path / "hopeless")
        shutil.copytree(chaos_dir, directory)
        for shard in range(SHARDS):
            manifest = os.path.join(directory, f"shard-{shard:02d}",
                                    "maps.json")
            with open(manifest, "w") as handle:
                handle.write("{")
        with pytest.raises(IndexCorruptError):
            ShardedIndex.open(directory, on_damage="quarantine")

    def test_invalid_on_damage_rejected(self, chaos_dir):
        with pytest.raises(ValueError):
            ShardedIndex.open(chaos_dir, on_damage="shrug")

    def test_is_sharded_dir_surfaces_torn_manifest(self, tmp_path):
        assert not is_sharded_dir(str(tmp_path / "nowhere"))
        plain = tmp_path / "plain"
        plain.mkdir()
        assert not is_sharded_dir(str(plain))
        torn = tmp_path / "torn"
        torn.mkdir()
        (torn / "manifest.json").write_text('{"shards": ')
        with pytest.raises(IndexCorruptError):
            is_sharded_dir(str(torn))


# -- crash recovery: atomic-write debris --------------------------------------


class TestCrashRecovery:
    def test_pathindex_open_sweeps_staging_debris(self, tmp_path, govtrack):
        directory = str(tmp_path / "flat")
        index, _ = build_index(govtrack, directory)
        paths = index.path_count
        index.close()
        debris = os.path.join(directory, "maps.json.k3j2a9.tmp")
        with open(debris, "w") as handle:   # a crash mid-atomic-write
            handle.write('{"half": ')
        reopened = PathIndex.open(directory)
        try:
            assert not os.path.exists(debris)
            assert reopened.path_count == paths
        finally:
            reopened.close()

    def test_sharded_open_sweeps_root_and_shard_debris(self, chaos_dir,
                                                       tmp_path):
        directory = str(tmp_path / "crashed")
        shutil.copytree(chaos_dir, directory)
        root_debris = os.path.join(directory, "manifest.json.x1.tmp")
        shard_debris = os.path.join(directory, "shard-00",
                                    "maps.json.y2.tmp")
        for path in (root_debris, shard_debris):
            with open(path, "w") as handle:
                handle.write("junk")
        index = ShardedIndex.open(directory)
        try:
            assert not os.path.exists(root_debris)
            assert not os.path.exists(shard_debris)
        finally:
            index.close()

    def test_interrupted_write_leaves_target_and_debris_sweepable(
            self, tmp_path):
        target = tmp_path / "maps.json"
        atomic_write_json(str(target), {"epoch": 1})
        # Simulate the crash window: staging file exists, replace never
        # ran.  The target must read back intact, and the sweep must
        # remove exactly the debris.
        debris = tmp_path / "maps.json.zz.tmp"
        debris.write_text('{"epoch": 2')
        survivor = tmp_path / "keep.json"
        survivor.write_text("{}")
        (tmp_path / "directory.tmp").mkdir()   # never swept: not a file
        removed = sweep_tmp_debris(str(tmp_path))
        assert removed == [str(debris)]
        assert target.read_text() == '{"epoch": 1}'
        assert survivor.exists()
        assert (tmp_path / "directory.tmp").is_dir()

    def test_sweep_of_missing_directory_is_quiet(self, tmp_path):
        assert sweep_tmp_debris(str(tmp_path / "gone")) == []


# -- seeded full-jitter retry backoff -----------------------------------------


class TestJitteredRetry:
    def test_default_policy_stays_deterministic(self):
        assert DEFAULT_RETRY.rng() is None
        assert DEFAULT_RETRY.delay_for(1) == DEFAULT_RETRY.delay_for(1)
        assert DEFAULT_RETRY.delay_for(2) == 0.002

    def test_jittered_draws_are_seeded_and_bounded(self):
        first, second = JITTERED_RETRY.rng(), JITTERED_RETRY.rng()
        assert first is not None
        for attempt in range(1, 8):
            cap = min(JITTERED_RETRY.base_delay
                      * JITTERED_RETRY.multiplier ** (attempt - 1),
                      JITTERED_RETRY.max_delay)
            delay = JITTERED_RETRY.delay_for(attempt, first)
            assert delay == JITTERED_RETRY.delay_for(attempt, second)
            assert 0.0 <= delay <= cap

    def test_seed_changes_the_schedule(self):
        policy = RetryPolicy(jitter=True, seed=1)
        other = RetryPolicy(jitter=True, seed=2)
        schedule = [policy.delay_for(a, policy.rng()) for a in (3, 3)]
        assert schedule[0] == schedule[1]
        assert policy.delay_for(3, policy.rng()) \
            != other.delay_for(3, other.rng())


# -- the serving layer under chaos --------------------------------------------


class TestServingChaos:
    def test_healthz_reports_degraded_with_failed_shards(self, chaos_dir,
                                                         tmp_path, q1):
        directory = damaged_copy(chaos_dir, tmp_path / "served")
        engine = open_engine(directory, recover=True)
        serving = ServingEngine(engine, ServingConfig(workers=2,
                                                      cache_bytes=0))
        try:
            payload = serving.health_payload()
            assert payload["status"] == "degraded"
            assert payload["failed_shards"] == [1]
            assert payload["shards"] == SHARDS
            stats = serving.stats_payload()
            states = {row["shard"]: row["state"]
                      for row in stats["shard_health"]}
            assert states[1] == QUARANTINED
            metrics = serving.render_metrics()
            assert 'sama_shard_healthy{shard="1"} 0' in metrics
            assert 'sama_shard_healthy{shard="0"} 1' in metrics
            served = serving.query(q1, k=10)
            assert not served.payload["complete"]
            assert any("shard_failed" in reason
                       for reason in served.payload["reasons"])
        finally:
            serving.close()

    def test_served_availability_with_dead_shard(self, chaos_dir, q1, q2):
        engine = open_engine(chaos_dir)
        install(engine, FaultPlan(fail_shards=(1,), seed=7))
        serving = ServingEngine(engine, ServingConfig(workers=2,
                                                      cache_bytes=0))
        try:
            attempts, answered = 0, 0
            for _ in range(5):
                for query in (q1, q2):
                    engine.cold_cache()
                    attempts += 1
                    serving.query(query, k=10)
                    answered += 1
            assert answered / attempts >= 0.99
        finally:
            serving.close()


class TestGracefulDrain:
    def test_drain_refuses_new_work_and_finishes_in_flight(self, chaos_dir,
                                                           q1, q2):
        engine = open_engine(chaos_dir)
        install(engine, FaultPlan(slow_shards=(0, 1, 2, 3),
                                  slow_shard_ms=150.0))
        engine.cold_cache()
        serving = ServingEngine(engine, ServingConfig(workers=2,
                                                      cache_bytes=0))
        try:
            in_flight: Future = serving.submit(q1, k=10)
            time.sleep(0.05)                 # let the worker pick it up
            serving.start_drain()
            assert serving.draining
            assert serving.health_payload()["status"] == "draining"
            with pytest.raises(OverloadedError):
                serving.submit(q2, k=10)
            assert serving.drain(deadline_s=30.0)
            result = in_flight.result(timeout=1.0)
            assert ranking(result.answers)   # the held request completed
            stats = serving.stats_payload()
            assert stats["draining"] and stats["drain_rejected"] == 1
        finally:
            serving.close()

    def test_draining_outranks_degraded_in_healthz(self, chaos_dir,
                                                   tmp_path):
        directory = damaged_copy(chaos_dir, tmp_path / "both")
        engine = open_engine(directory, recover=True)
        serving = ServingEngine(engine, ServingConfig(workers=1))
        try:
            assert serving.health_payload()["status"] == "degraded"
            serving.start_drain()
            assert serving.health_payload()["status"] == "draining"
        finally:
            serving.close()

    def test_http_layer_maps_drain_to_503(self, chaos_dir, q1):
        import json
        import urllib.error
        import urllib.request

        from repro.serving.http import serve

        engine = open_engine(chaos_dir)
        serving = ServingEngine(engine, ServingConfig(workers=2))
        server = serve(serving, port=0).serve_background()
        try:
            with urllib.request.urlopen(f"{server.url}/healthz",
                                        timeout=5) as response:
                assert response.status == 200
            serving.start_drain()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/healthz", timeout=5)
            assert excinfo.value.code == 503
            body = json.dumps({"query": Q1_SPARQL})
            request = urllib.request.Request(
                f"{server.url}/query", data=body.encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5)
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "5"
            assert json.loads(excinfo.value.read())["draining"] is True
        finally:
            server.shutdown()

    def test_graceful_shutdown_drains_then_closes(self, chaos_dir, q1):
        from repro.serving.http import serve

        engine = open_engine(chaos_dir)
        serving = ServingEngine(engine, ServingConfig(workers=2))
        server = serve(serving, port=0).serve_background()
        assert server.graceful_shutdown(drain_deadline_s=5.0)
        # The engine underneath is released with it.
        with pytest.raises(RuntimeError):
            serving.query(q1, k=10)
