"""Tests for the ``sama`` command-line interface."""

import pytest

from repro.cli import main
from repro.rdf import ntriples


@pytest.fixture
def data_file(tmp_path, govtrack):
    path = tmp_path / "gov.nt"
    ntriples.write_file(govtrack.triples(), path)
    return str(path)


@pytest.fixture
def built_index(tmp_path, data_file):
    directory = str(tmp_path / "idx")
    assert main(["index", data_file, directory]) == 0
    return directory


QUERY = ('PREFIX gov: <http://example.org/govtrack/> '
         'SELECT ?v WHERE { ?v gov:gender "Male" . }')


class TestGenerate:
    def test_generate_writes_ntriples(self, tmp_path, capsys):
        out = str(tmp_path / "lubm.nt")
        assert main(["generate", "lubm", out, "--triples", "300"]) == 0
        triples = list(ntriples.parse_file(out))
        assert 200 <= len(triples) <= 300
        assert "wrote" in capsys.readouterr().out

    def test_generate_seeded_deterministic(self, tmp_path):
        a = str(tmp_path / "a.nt")
        b = str(tmp_path / "b.nt")
        main(["generate", "kegg", a, "--triples", "200", "--seed", "5"])
        main(["generate", "kegg", b, "--triples", "200", "--seed", "5"])
        assert open(a).read() == open(b).read()

    def test_unknown_dataset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "nope", str(tmp_path / "x.nt")])


class TestIndex:
    def test_index_reports_stats(self, data_file, tmp_path, capsys):
        assert main(["index", data_file, str(tmp_path / "i")]) == 0
        out = capsys.readouterr().out
        assert "indexed 14 paths" in out
        assert "|HV| = 17" in out

    def test_index_turtle_input(self, tmp_path, capsys):
        ttl = tmp_path / "data.ttl"
        ttl.write_text('@prefix ex: <http://x/> .\n'
                       'ex:a ex:p ex:b .\nex:b ex:q "leaf" .\n')
        assert main(["index", str(ttl), str(tmp_path / "i")]) == 0
        assert "indexed" in capsys.readouterr().out


class TestQuery:
    def test_inline_query(self, built_index, capsys):
        assert main(["query", built_index, "-e", QUERY]) == 0
        out = capsys.readouterr().out
        assert "#1 score=" in out
        assert "?v =" in out

    def test_query_file(self, built_index, tmp_path, capsys):
        query_file = tmp_path / "q.sparql"
        query_file.write_text(QUERY)
        assert main(["query", built_index, str(query_file), "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("score=") == 2

    def test_no_query_is_an_error(self, built_index, capsys):
        assert main(["query", built_index]) == 2

    def test_no_answers_exit_code(self, built_index, capsys):
        rc = main(["query", built_index, "-e",
                   'SELECT ?v WHERE { ?v <http://nowhere/p> "ghost" . }'])
        assert rc == 1
        assert "no answers" in capsys.readouterr().out

    def test_explain_renders_forest(self, built_index, capsys):
        assert main(["query", built_index, "--explain", "-e", QUERY]) == 0

    def test_verbose_shows_alignments(self, built_index, capsys):
        assert main(["query", built_index, "-v", "-e", QUERY]) == 0
        assert "->" in capsys.readouterr().out


class TestInspect:
    def test_inspect_metadata(self, built_index, capsys):
        assert main(["inspect", built_index]) == 0
        out = capsys.readouterr().out
        assert "paths: 14" in out
        assert "dataset" in out

    def test_inspect_sample(self, built_index, capsys):
        assert main(["inspect", built_index, "--sample", "3"]) == 0
        out = capsys.readouterr().out
        assert "sample paths:" in out
