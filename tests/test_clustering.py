"""Unit tests for clustering (§5 step 2) — the Fig. 3 regression."""

import pytest

from repro.engine.clustering import build_clusters, missing_path_penalty
from repro.engine.preprocess import prepare_query
from repro.paths.model import path_of
from repro.rdf.graph import QueryGraph
from repro.rdf.terms import Literal


@pytest.fixture
def q1_clusters(govtrack_engine, q1):
    prepared = govtrack_engine.prepare(q1)
    clusters = govtrack_engine.clusters(prepared)
    by_query_text = {c.query_path.text(): c for c in clusters}
    return by_query_text


class TestFig3:
    def test_cl1_scores(self, q1_clusters):
        """cl1: p1 at 0, p2-p6 at 1 (Fig. 3)."""
        cl1 = q1_clusters[
            "CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care"]
        scores = {entry.path.text(): entry.score for entry in cl1.entries}
        assert scores[
            "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care"] == 0
        assert scores[
            "JeffRyser-sponsor-A1589-aTo-B0532-subject-Health Care"] == 1
        assert scores[
            "PierceDickes-sponsor-A0467-aTo-B0532-subject-Health Care"] == 1

    def test_cl2_scores(self, q1_clusters):
        """cl2: the short paths at 0, the aTo paths at 1.5 (Fig. 3)."""
        cl2 = q1_clusters["?v3-sponsor-?v2-subject-Health Care"]
        scores = {entry.path.text(): entry.score for entry in cl2.entries}
        assert scores["PierceDickes-sponsor-B1432-subject-Health Care"] == 0
        assert scores["JeffRyser-sponsor-B0045-subject-Health Care"] == 0
        assert scores[
            "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care"] == 1.5

    def test_cl3_scores(self, q1_clusters):
        """cl3: the four gender paths, all at 0 (Fig. 3)."""
        cl3 = q1_clusters["?v3-gender-Male"]
        assert len(cl3.entries) == 4
        assert all(entry.score == 0 for entry in cl3.entries)

    def test_same_path_in_two_clusters_with_different_scores(self,
                                                             q1_clusters):
        """p1 appears in cl1 at 0 and in cl2 at 1.5 (the paper's note)."""
        p1 = "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care"
        cl1 = q1_clusters["CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care"]
        cl2 = q1_clusters["?v3-sponsor-?v2-subject-Health Care"]
        score_in_cl1 = next(e.score for e in cl1.entries
                            if e.path.text() == p1)
        score_in_cl2 = next(e.score for e in cl2.entries
                            if e.path.text() == p1)
        assert (score_in_cl1, score_in_cl2) == (0, 1.5)

    def test_entries_sorted_best_first(self, q1_clusters):
        for cluster in q1_clusters.values():
            scores = [entry.score for entry in cluster.entries]
            assert scores == sorted(scores)


class TestClusterMechanics:
    def test_variable_sink_uses_containment(self, govtrack_engine):
        q = QueryGraph()
        q.add_triple("http://example.org/govtrack/CarlaBunes",
                     "http://example.org/govtrack/sponsor", "?v")
        prepared = govtrack_engine.prepare(q)
        clusters = govtrack_engine.clusters(prepared)
        assert clusters[0].entries  # anchored through the sponsor edge

    def test_empty_cluster_when_nothing_matches(self, govtrack_engine):
        q = QueryGraph()
        q.add_triple("?a", "http://example.org/nowhere/unknownPredicate",
                     Literal("Nothing Like This"))
        prepared = govtrack_engine.prepare(q)
        clusters = govtrack_engine.clusters(prepared)
        assert clusters[0].is_empty
        assert clusters[0].best() is None

    def test_max_cluster_size_truncates(self, govtrack_engine, q1):
        prepared = govtrack_engine.prepare(q1)
        clusters = build_clusters(prepared, govtrack_engine.index,
                                  matcher=govtrack_engine.matcher,
                                  max_cluster_size=2)
        assert all(len(c) <= 2 for c in clusters)

    def test_score_at_past_end_is_missing_penalty(self, govtrack_engine, q1):
        prepared = govtrack_engine.prepare(q1)
        cluster = govtrack_engine.clusters(prepared)[0]
        assert cluster.score_at(10 ** 6) == cluster.missing_penalty
        assert cluster.score_at(0) == cluster.entries[0].score

    def test_missing_penalty_prices_every_element(self):
        q = path_of("?a", "http://x/p", "?b", "http://x/q", "Male")
        # 3 nodes * a + 2 edges * c = 3 + 4.
        assert missing_path_penalty(q) == 7.0

    def test_missing_penalty_dominates_any_alignment(self, govtrack_engine,
                                                     q1):
        """A terrible path still beats having no path at all."""
        prepared = govtrack_engine.prepare(q1)
        for cluster in govtrack_engine.clusters(prepared):
            for entry in cluster.entries:
                assert entry.score <= cluster.missing_penalty
