"""Offline compaction (``sama index compact``) and atomic metadata writes."""

import json
import os

import pytest

from repro.cli import main
from repro.engine import SamaEngine
from repro.index.incremental import (IncrementalIndex, MANIFEST_FILE,
                                     compact_directory)
from repro.rdf.graph import DataGraph
from repro.resilience import ReproError
from repro.storage.atomic import atomic_write_bytes, atomic_write_json


def uri(name):
    return f"http://x/{name}"


@pytest.fixture
def dirty_index(tmp_path):
    """An on-disk incremental index carrying tombstoned bytes."""
    graph = DataGraph.from_triples([
        (uri("a"), uri("p"), uri("b")),
        (uri("b"), uri("p"), uri("c")),
        (uri("c"), uri("p"), uri("d")),
    ])
    directory = str(tmp_path / "inc")
    index = IncrementalIndex(graph, directory)
    index.remove_triple(uri("c"), uri("p"), uri("d"))
    assert index.stats.dead_bytes > 0
    paths_before = sorted(str(p) for p in index.all_paths())
    index.save_manifest()
    index.close()
    return directory, paths_before


class TestCompactDirectory:
    def test_reclaims_dead_bytes_and_keeps_content(self, dirty_index):
        directory, paths_before = dirty_index
        old_size = os.path.getsize(os.path.join(directory, "paths.log"))

        report = compact_directory(directory)
        assert report.dead_bytes > 0
        # The log never grows; shrinkage is page-granular, so a tiny
        # index may stay at one page even after reclaiming records.
        assert report.new_log_bytes <= report.old_log_bytes
        assert report.old_log_bytes == old_size
        assert report.live_paths == len(paths_before)

        manifest = json.load(open(os.path.join(directory, MANIFEST_FILE)))
        assert manifest["dead_bytes"] == 0
        assert len(manifest["alive"]) == report.live_paths

    def test_compacted_index_reopens_with_same_paths(self, dirty_index):
        directory, paths_before = dirty_index
        compact_directory(directory)
        # A second compaction finds nothing to reclaim.
        again = compact_directory(directory)
        assert again.dead_bytes == 0
        assert again.live_paths == len(paths_before)

    def test_compaction_bumps_epoch(self, dirty_index):
        directory, _ = dirty_index
        before = json.load(open(os.path.join(directory, MANIFEST_FILE)))
        compact_directory(directory)
        after = json.load(open(os.path.join(directory, MANIFEST_FILE)))
        assert after["epoch"] > before["epoch"]

    def test_missing_manifest_is_a_typed_error(self, tmp_path):
        os.makedirs(tmp_path / "empty")
        with pytest.raises(ReproError):
            compact_directory(str(tmp_path / "empty"))


class TestCompactCli:
    def test_cli_reports_reclaimed_bytes(self, dirty_index, capsys):
        directory, paths_before = dirty_index
        assert main(["index", "compact", directory]) == 0
        out = capsys.readouterr().out
        assert "reclaimed" in out
        assert f"{len(paths_before)} live paths" in out

    def test_cli_on_missing_manifest_exits_nonzero(self, tmp_path, capsys):
        os.makedirs(tmp_path / "empty")
        assert main(["index", "compact", str(tmp_path / "empty")]) != 0
        assert "error" in capsys.readouterr().err.lower()


class TestAtomicWrites:
    def test_replaces_content_without_leftovers(self, tmp_path):
        target = tmp_path / "labels.dict"
        target.write_bytes(b"old")
        atomic_write_bytes(str(target), b"new contents")
        assert target.read_bytes() == b"new contents"
        assert os.listdir(tmp_path) == ["labels.dict"]

    def test_failure_leaves_original_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "maps.json"
        target.write_text('{"ok": true}')

        real_replace = os.replace

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_json(str(target), {"ok": False})
        monkeypatch.setattr(os, "replace", real_replace)

        assert json.loads(target.read_text()) == {"ok": True}
        assert os.listdir(tmp_path) == ["maps.json"], "temp file cleaned up"

    def test_index_build_uses_atomic_paths(self, tmp_path, govtrack):
        """labels.dict + maps.json land with no stray temp files."""
        directory = tmp_path / "idx"
        engine = SamaEngine.from_graph(govtrack, directory=str(directory))
        engine.close()
        leftovers = [name for name in os.listdir(directory)
                     if name.endswith(".tmp")]
        assert leftovers == []
