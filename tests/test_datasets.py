"""Unit tests for the dataset generators and the registry."""

import pytest

from repro.datasets import DATASETS, all_datasets, dataset, lubm_queries
from repro.datasets.base import EntityMinter, TripleBudget
from repro.datasets.lubm_queries import query_by_id
from repro.rdf.graph import DataGraph
from repro.rdf.namespaces import Namespace


class TestRegistry:
    def test_eight_datasets_in_paper_order(self):
        names = [spec.name for spec in all_datasets()]
        assert names == ["pblog", "gov", "kegg", "berlin", "imdb",
                         "lubm", "uobm", "dblp"]

    def test_lookup_case_insensitive(self):
        assert dataset("LUBM").name == "lubm"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            dataset("freebase")

    def test_default_sizes_preserve_paper_ordering(self):
        sizes = [spec.default_triples for spec in all_datasets()]
        assert sizes == sorted(sizes)


@pytest.mark.parametrize("name", sorted(DATASETS))
class TestEveryGenerator:
    def test_deterministic(self, name):
        spec = dataset(name)
        first = spec.build(400, seed=3)
        second = spec.build(400, seed=3)
        assert set(first.triples()) == set(second.triples())

    def test_seed_changes_content(self, name):
        spec = dataset(name)
        a = spec.build(400, seed=1)
        b = spec.build(400, seed=2)
        assert set(a.triples()) != set(b.triples())

    def test_triple_budget_respected(self, name):
        spec = dataset(name)
        graph = spec.build(500)
        assert graph.edge_count() <= 500
        assert graph.edge_count() >= 350  # generators fill most of it

    def test_indexable(self, name, tmp_path):
        from repro.index import build_index
        from repro.paths.extraction import ExtractionLimits
        spec = dataset(name)
        graph = spec.build(300)
        limits = ExtractionLimits(max_length=16, max_paths=20_000,
                                  on_limit="truncate")
        index, stats = build_index(graph, str(tmp_path / name),
                                   limits=limits)
        assert stats.path_count > 0
        # Densely cyclic datasets (blogosphere links, UOBM friendships)
        # legitimately truncate; tree-shaped ones must not.
        if name not in ("pblog", "uobm"):  # cyclic: friend/blog links
            assert not stats.truncated
        index.close()

    def test_named(self, name):
        assert dataset(name).build(300).name


class TestDatasetShapes:
    def test_pblog_is_cyclic_and_hubby(self):
        graph = dataset("pblog").build(800)
        # The blogosphere has reciprocal links: hub promotion territory.
        reciprocal = 0
        for edge in graph.edges():
            back = any(dst == edge.src for _l, dst
                       in graph.out_edges(edge.dst))
            reciprocal += back
        assert reciprocal > 0

    def test_lubm_vocabulary(self):
        graph = dataset("lubm").build(800)
        locals_ = {label.local_name for label in graph.edge_labels()}
        assert {"advisor", "takesCourse", "teacherOf",
                "worksFor"} <= locals_

    def test_uobm_extends_lubm(self):
        graph = dataset("uobm").build(2000)
        locals_ = {label.local_name for label in graph.edge_labels()}
        assert "isFriendOf" in locals_ or "hasAlumnus" in locals_ \
            or "like" in locals_
        assert "advisor" in locals_  # still LUBM underneath

    def test_dblp_citations_acyclic(self):
        import networkx as nx
        graph = dataset("dblp").build(1500)
        digraph = nx.DiGraph()
        for edge in graph.edges():
            if edge.label.local_name == "cites":
                digraph.add_edge(edge.src, edge.dst)
        assert nx.is_directed_acyclic_graph(digraph)

    def test_govtrack_synthetic_has_fig1_schema(self):
        graph = dataset("gov").build(600)
        locals_ = {label.local_name for label in graph.edge_labels()}
        assert {"sponsor", "aTo", "subject", "gender"} <= locals_


class TestBudgetAndMinter:
    def test_budget_counts_only_new_triples(self):
        budget = TripleBudget(2)
        graph = DataGraph()
        assert budget.add(graph, "http://x/a", "http://x/p", "http://x/b")
        assert budget.add(graph, "http://x/a", "http://x/p", "http://x/b")
        assert budget.spent == 1  # duplicate not charged

    def test_budget_exhaustion(self):
        budget = TripleBudget(1)
        graph = DataGraph()
        budget.add(graph, "http://x/a", "http://x/p", "http://x/b")
        assert budget.exhausted
        assert not budget.add(graph, "http://x/a", "http://x/p", "http://x/c")
        assert graph.edge_count() == 1

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            TripleBudget(0)

    def test_minter_sequences(self):
        minter = EntityMinter(Namespace("http://x/"))
        assert minter.mint("Thing").local_name == "Thing0"
        assert minter.mint("Thing").local_name == "Thing1"
        assert minter.mint("Other").local_name == "Other0"


class TestLubmQueries:
    def test_twelve_queries(self):
        assert len(lubm_queries()) == 12

    def test_all_parse_to_graphs(self):
        for spec in lubm_queries():
            assert spec.graph.node_count() >= 3
            assert spec.variable_count >= 1

    def test_complexity_spans_fig7_ranges(self):
        specs = lubm_queries()
        assert specs[0].node_count == 3
        assert specs[0].variable_count == 1
        assert specs[-1].variable_count == 7
        assert max(s.node_count for s in specs) >= 14

    def test_complexity_roughly_increasing(self):
        sizes = [spec.node_count + spec.edge_count for spec in lubm_queries()]
        # Monotone up to local jitter: each query is no smaller than the
        # one two positions earlier.
        for index in range(2, len(sizes)):
            assert sizes[index] >= sizes[index - 2]

    def test_query_by_id(self):
        assert query_by_id("Q5").qid == "Q5"
        with pytest.raises(KeyError):
            query_by_id("Q99")

    def test_str_renders(self):
        assert "Q1" in str(lubm_queries()[0])
