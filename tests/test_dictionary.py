"""Tests for dictionary compression (§7 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import build_index
from repro.index.pathindex import PathIndex
from repro.paths.model import Path
from repro.rdf.terms import Literal, URI, Variable
from repro.storage.dictionary import (TermDictionary, decode_path_ids,
                                      encode_path_ids)
from repro.storage.serializer import CodecError, encode_path


class TestTermDictionary:
    def test_first_use_assigns_sequential_ids(self):
        d = TermDictionary()
        assert d.encode(URI("http://x/a")) == 0
        assert d.encode(URI("http://x/b")) == 1
        assert d.encode(URI("http://x/a")) == 0  # stable
        assert len(d) == 2

    def test_lookup_inverse(self):
        d = TermDictionary()
        term = Literal("Health Care")
        assert d.lookup(d.encode(term)) == term

    def test_lookup_out_of_range(self):
        with pytest.raises(CodecError):
            TermDictionary().lookup(0)

    def test_id_of_requires_presence(self):
        d = TermDictionary()
        with pytest.raises(KeyError):
            d.id_of(URI("http://x/missing"))

    def test_contains(self):
        d = TermDictionary()
        d.encode(URI("http://x/a"))
        assert URI("http://x/a") in d
        assert URI("http://x/b") not in d

    def test_save_load_roundtrip(self, tmp_path):
        d = TermDictionary()
        terms = [URI("http://x/a"), Literal("v"),
                 Literal("t", language="en"), Variable("q")]
        for term in terms:
            d.encode(term)
        d.save(tmp_path / "terms.dict")
        loaded = TermDictionary.load(tmp_path / "terms.dict")
        assert len(loaded) == len(terms)
        for index, term in enumerate(terms):
            assert loaded.lookup(index) == term
            assert loaded.id_of(term) == index

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk"
        path.write_bytes(b"NOPE")
        with pytest.raises(CodecError):
            TermDictionary.load(path)


class TestCompressedPathCodec:
    def test_roundtrip(self):
        d = TermDictionary()
        path = Path([URI("http://x/a"), Literal("L"), URI("http://x/c")],
                    [URI("http://x/p"), URI("http://x/q")],
                    node_ids=[1, 2, 3])
        blob = encode_path_ids(path, d)
        assert decode_path_ids(blob, d) == path

    def test_compression_beats_plain_on_repeated_labels(self):
        d = TermDictionary()
        long_uri = URI("http://very.long.example.org/ontology/with/a/deep"
                       "/path/FullProfessor")
        path = Path([long_uri] * 1, [])
        plain_total = 0
        compressed_total = 0
        for _ in range(50):
            plain_total += len(encode_path(path))
            compressed_total += len(encode_path_ids(path, d))
        assert compressed_total < plain_total / 5

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=8))
    @settings(deadline=None)
    def test_roundtrip_property(self, indices):
        d = TermDictionary()
        nodes = [URI(f"http://x/n{i}") for i in indices]
        edges = [URI(f"http://x/e{i}") for i in indices[:-1]]
        path = Path(nodes, edges)
        assert decode_path_ids(encode_path_ids(path, d), d) == path


class TestCompressedIndex:
    def test_compressed_index_same_content(self, govtrack, tmp_path):
        plain, stats_plain = build_index(govtrack, str(tmp_path / "plain"))
        packed, stats_packed = build_index(govtrack, str(tmp_path / "packed"),
                                           compress=True)
        assert sorted(p.text() for p in plain.all_paths()) == \
            sorted(p.text() for p in packed.all_paths())
        assert packed.is_compressed and not plain.is_compressed
        plain.close()
        packed.close()

    def test_compressed_index_smaller_at_scale(self, tmp_path):
        from repro.datasets import dataset
        graph = dataset("lubm").build(1500, seed=2)
        # The inline-term format is the size baseline; the default
        # (interned records) is itself dictionary-coded, so both it and
        # the explicit §7 codec must come in well under half.
        _plain, stats_plain = build_index(graph, str(tmp_path / "p"),
                                          intern_records=False)
        _packed, stats_packed = build_index(graph, str(tmp_path / "c"),
                                            compress=True)
        _interned, stats_interned = build_index(graph, str(tmp_path / "i"))
        assert stats_packed.size_bytes < stats_plain.size_bytes / 2
        assert stats_interned.size_bytes < stats_plain.size_bytes / 2

    def test_compressed_index_reopens(self, govtrack, tmp_path):
        directory = str(tmp_path / "reopen")
        built, _stats = build_index(govtrack, directory, compress=True)
        original = sorted(p.text() for p in built.all_paths())
        built.close()
        reopened = PathIndex.open(directory)
        assert reopened.is_compressed
        assert sorted(p.text() for p in reopened.all_paths()) == original
        reopened.close()

    def test_compressed_queries_identical(self, govtrack, q1, tmp_path):
        from repro.engine import SamaEngine
        plain = SamaEngine.from_graph(govtrack,
                                      directory=str(tmp_path / "qp"))
        import repro.index.builder as builder_module
        packed_index, _ = builder_module.build_index(
            govtrack, str(tmp_path / "qc"), compress=True)
        from repro.engine import SamaEngine as Engine
        packed = Engine(packed_index)
        assert [a.score for a in plain.query(q1, k=5)] == \
            [a.score for a in packed.query(q1, k=5)]
        plain.close()
        packed.close()
