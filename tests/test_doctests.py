"""Executable-documentation gate: doctests over the public API.

The documentation pass turned the scoring, engine, serving, and
sharded-index docstrings into worked Fig. 1 (GovTrack) examples; this
module runs them as part of tier-1 so prose and code cannot drift
apart again.  CI's ``docs`` job runs the same modules standalone.
"""

import doctest
import importlib

import pytest

#: Public-API modules whose docstrings carry worked examples.
MODULES = [
    "repro.engine.sama",
    "repro.index.sharded",
    "repro.scoring.conformity",
    "repro.scoring.quality",
    "repro.scoring.score",
    "repro.serving.cache",
    "repro.serving.client",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, (
        f"{result.failed} doctest failure(s) in {module_name}")


def test_doctests_are_present():
    """Guard against the gate passing vacuously: the documented modules
    must actually carry examples."""
    finder = doctest.DocTestFinder()
    total = 0
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        total += sum(len(test.examples) for test in finder.find(module))
    assert total >= 30, f"expected >= 30 doctest examples, found {total}"
