"""Unit tests for the SamaEngine facade."""

import pytest

from repro.engine import EngineConfig, SamaEngine
from repro.rdf.graph import QueryGraph
from repro.rdf.sparql import parse_select
from repro.rdf.terms import Literal, Variable
from repro.scoring import ScoringWeights


GOV = "http://example.org/govtrack/"

SPARQL_Q1 = """
    PREFIX gov: <http://example.org/govtrack/>
    SELECT ?v1 ?v2 ?v3 WHERE {
        gov:CarlaBunes gov:sponsor ?v1 .
        ?v1 gov:aTo ?v2 .
        ?v2 gov:subject "Health Care" .
        ?v3 gov:sponsor ?v2 .
        ?v3 gov:gender "Male" .
    }"""


class TestQueryInputs:
    def test_sparql_text(self, govtrack_engine):
        answers = govtrack_engine.query(SPARQL_Q1, k=1)
        assert answers[0].substitution()[Variable("v2")].value.endswith(
            "B1432")

    def test_select_query_object(self, govtrack_engine):
        answers = govtrack_engine.query(parse_select(SPARQL_Q1), k=1)
        assert answers

    def test_query_graph(self, govtrack_engine, q1):
        assert govtrack_engine.query(q1, k=1)

    def test_data_graph_as_ground_query(self, govtrack_engine, govtrack):
        sub = govtrack.subgraph([govtrack.node_for(GOV + "PierceDickes"),
                                 govtrack.node_for(Literal("Male"))])
        answers = govtrack_engine.query(sub, k=1)
        assert answers[0].is_exact

    def test_sparql_equivalent_to_graph(self, govtrack_engine, q1):
        from_text = govtrack_engine.query(SPARQL_Q1, k=1)[0]
        from_graph = govtrack_engine.query(q1, k=1)[0]
        assert from_text.score == from_graph.score

    def test_unsupported_type_rejected(self, govtrack_engine):
        with pytest.raises(TypeError):
            govtrack_engine.query(42)


class TestLifecycle:
    def test_from_graph_records_stats(self, govtrack):
        engine = SamaEngine.from_graph(govtrack)
        assert engine.index_stats.path_count == 14
        engine.close()

    def test_open_existing_directory(self, govtrack, tmp_path):
        directory = str(tmp_path / "idx")
        SamaEngine.from_graph(govtrack, directory=directory).close()
        with SamaEngine.open(directory) as engine:
            assert engine.query(SPARQL_Q1, k=1)

    def test_context_manager(self, govtrack):
        with SamaEngine.from_graph(govtrack) as engine:
            assert engine.query(SPARQL_Q1, k=1)


class TestConfiguration:
    def test_matcher_levels_change_results(self, govtrack):
        q = QueryGraph()
        q.add_triple("?v", GOV + "gender", Literal("Man"))  # synonym of Male
        semantic = SamaEngine.from_graph(
            govtrack, config=EngineConfig(matcher_level="semantic"))
        exact = SamaEngine.from_graph(
            govtrack, config=EngineConfig(matcher_level="exact",
                                          semantic_lookup=False))
        sem_answers = semantic.query(q, k=1)
        exact_answers = exact.query(q, k=1)
        # The thesaurus makes "Man" an exact hit for "Male"; without it
        # the engine still answers through the anchor fallback, but
        # only approximately (the sink label mismatches).
        assert sem_answers and sem_answers[0].is_exact
        assert exact_answers and not exact_answers[0].is_exact
        assert exact_answers[0].score > sem_answers[0].score
        semantic.close()
        exact.close()

    def test_custom_weights_change_scores(self, govtrack, q2):
        heavy = SamaEngine.from_graph(govtrack, config=EngineConfig(
            weights=ScoringWeights(node_mismatch=10.0)))
        light = SamaEngine.from_graph(govtrack)
        heavy_best = heavy.query(q2, k=1)[0]
        light_best = light.query(q2, k=1)[0]
        assert heavy_best.score != light_best.score
        heavy.close()
        light.close()

    def test_cold_and_warm_cache(self, govtrack_engine, q1):
        govtrack_engine.warm_cache()
        govtrack_engine.query(q1, k=1)
        before = govtrack_engine.index.io_stats.page_reads
        govtrack_engine.query(q1, k=1)
        warm_reads = govtrack_engine.index.io_stats.page_reads - before
        assert warm_reads == 0

        govtrack_engine.cold_cache()
        before = govtrack_engine.index.io_stats.page_reads
        govtrack_engine.query(q1, k=1)
        cold_reads = govtrack_engine.index.io_stats.page_reads - before
        assert cold_reads > 0

    def test_last_result_exposed(self, govtrack_engine, q1):
        govtrack_engine.query(q1, k=2)
        assert govtrack_engine.last_result is not None
        assert len(govtrack_engine.last_result.answers) == 2

    def test_repr(self, govtrack_engine):
        assert "SamaEngine" in repr(govtrack_engine)


class TestSelectResultSets:
    def test_projection_applied(self, govtrack_engine):
        results = govtrack_engine.select(SPARQL_Q1, k=3)
        assert [v.value for v in results.variables] == ["v1", "v2", "v3"]
        assert len(results) == 3
        assert results[0]["v2"].value.endswith("B1432")

    def test_select_star_projects_all(self, govtrack_engine):
        results = govtrack_engine.select(
            'PREFIX gov: <http://example.org/govtrack/> '
            'SELECT * WHERE { ?who gov:gender "Male" . }', k=4)
        assert [v.value for v in results.variables] == ["who"]
        assert len(results) == 4

    def test_distinct_deduplicates(self, govtrack_engine):
        query = ('PREFIX gov: <http://example.org/govtrack/> '
                 'SELECT DISTINCT ?bill WHERE { '
                 '?who gov:sponsor ?bill . ?bill gov:subject "Health Care" . }')
        distinct = govtrack_engine.select(query, k=10)
        values = [row["bill"] for row in distinct]
        assert len(values) == len(set(values))

    def test_rows_ordered_by_score(self, govtrack_engine):
        results = govtrack_engine.select(SPARQL_Q1, k=10)
        scores = [row.score for row in results]
        assert scores == sorted(scores)

    def test_column_access(self, govtrack_engine):
        results = govtrack_engine.select(SPARQL_Q1, k=3)
        column = results.column("v3")
        assert len(column) == 3

    def test_missing_variable_raises(self, govtrack_engine):
        results = govtrack_engine.select(SPARQL_Q1, k=1)
        with pytest.raises(KeyError):
            results[0]["nope"]
        assert results[0].get("nope") is None

    def test_to_table_renders(self, govtrack_engine):
        table = govtrack_engine.select(SPARQL_Q1, k=2).to_table()
        assert "?v1" in table
        assert "score" in table

    def test_query_graph_rejected(self, govtrack_engine, q1):
        with pytest.raises(TypeError):
            govtrack_engine.select(q1)

    def test_row_str(self, govtrack_engine):
        row = govtrack_engine.select(SPARQL_Q1, k=1)[0]
        assert "?v1=" in str(row)


class TestJsonResults:
    def test_w3c_structure(self, govtrack_engine):
        payload = govtrack_engine.select(SPARQL_Q1, k=2).to_json()
        assert payload["head"]["vars"] == ["v1", "v2", "v3"]
        bindings = payload["results"]["bindings"]
        assert len(bindings) == 2
        first = bindings[0]
        assert first["v2"]["type"] == "uri"
        assert "sama:score" in first

    def test_literal_rendering(self, govtrack_engine):
        payload = govtrack_engine.select(
            'PREFIX gov: <http://example.org/govtrack/> '
            'SELECT ?g WHERE { gov:PierceDickes gov:gender ?g . }',
            k=1).to_json()
        cell = payload["results"]["bindings"][0]["g"]
        assert cell == {"type": "literal", "value": "Male"}

    def test_json_serialisable(self, govtrack_engine):
        import json
        payload = govtrack_engine.select(SPARQL_Q1, k=3).to_json()
        assert json.loads(json.dumps(payload)) == payload
