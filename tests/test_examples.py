"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; they execute as subprocesses
with a small workload so regressions in the APIs they use fail CI.
"""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples")
                   .glob("*.py"))

# Smaller workloads for the slower examples (positional arg = triples).
_ARGS = {
    "lubm_university_search.py": ["1500"],
    "compare_systems.py": ["1200"],
}


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    args = _ARGS.get(script.name, [])
    result = subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True, text=True, timeout=420)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"


def test_examples_exist():
    names = {script.name for script in _EXAMPLES}
    assert {"quickstart.py", "lubm_university_search.py",
            "build_your_own_dataset.py", "synonym_aware_search.py",
            "compare_systems.py"} <= names
