"""Unit tests for path extraction (§3.2, §5)."""

import pytest

from repro.paths.extraction import (ExtractionLimits, PathExplosionError,
                                    extract_paths, iter_paths, query_paths)
from repro.rdf.graph import DataGraph, QueryGraph


def uri(name):
    return f"http://x/{name}"


class TestGovTrackDecomposition:
    """The paper's worked decomposition (Fig. 3's path universe)."""

    def test_fourteen_paths(self, govtrack):
        assert len(extract_paths(govtrack)) == 14

    def test_paths_start_at_sources_end_at_sinks(self, govtrack):
        source_labels = {govtrack.label_of(n) for n in govtrack.sources()}
        sink_labels = {govtrack.label_of(n) for n in govtrack.sinks()}
        for path in extract_paths(govtrack):
            assert path.source in source_labels
            assert path.sink in sink_labels

    def test_known_paths_present(self, govtrack):
        texts = {p.text() for p in extract_paths(govtrack)}
        assert "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care" in texts
        assert "PierceDickes-gender-Male" in texts
        assert "PierceDickes-sponsor-B1432-subject-Health Care" in texts

    def test_query_decomposition(self, q1):
        texts = {p.text() for p in query_paths(q1)}
        assert texts == {
            "CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care",
            "?v3-sponsor-?v2-subject-Health Care",
            "?v3-gender-Male",
        }


class TestCyclesAndHubs:
    def test_cycle_terminates(self):
        g = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("c")),
            (uri("c"), uri("p"), uri("a")),
        ])
        paths = extract_paths(g)
        # Hub promotion picks roots; walks cut at the revisit.
        assert paths
        for path in paths:
            assert len(set(path.nodes)) == path.length  # no revisits

    def test_self_loop(self):
        g = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("a")),
            (uri("a"), uri("q"), uri("b")),
        ])
        paths = extract_paths(g)
        assert any(p.sink.value.endswith("b") for p in paths)

    def test_isolated_node_single_path(self):
        g = DataGraph()
        g.add_node(uri("lonely"))
        paths = extract_paths(g)
        assert len(paths) == 1
        assert paths[0].length == 1

    def test_empty_graph(self):
        assert extract_paths(DataGraph()) == []

    def test_diamond_two_paths(self):
        g = DataGraph.from_triples([
            (uri("s"), uri("p"), uri("l")),
            (uri("s"), uri("p"), uri("r")),
            (uri("l"), uri("q"), uri("t")),
            (uri("r"), uri("q"), uri("t")),
        ])
        assert len(extract_paths(g)) == 2


class TestLimits:
    @pytest.fixture
    def wide(self):
        # 3 binary levels -> 8 paths of 4 nodes.
        g = DataGraph()
        triples = []
        for level in range(3):
            for node in range(2 ** level):
                parent = f"n{level}_{node}"
                triples.append((uri(parent), uri("p"),
                                uri(f"n{level + 1}_{node * 2}")))
                triples.append((uri(parent), uri("p"),
                                uri(f"n{level + 1}_{node * 2 + 1}")))
        g.add_triples(triples)
        return g

    def test_max_paths_raises(self, wide):
        with pytest.raises(PathExplosionError):
            extract_paths(wide, ExtractionLimits(max_paths=3))

    def test_max_paths_truncates(self, wide):
        limits = ExtractionLimits(max_paths=3, on_limit="truncate")
        assert len(extract_paths(wide, limits)) == 3

    def test_max_length_raises(self, wide):
        with pytest.raises(PathExplosionError):
            extract_paths(wide, ExtractionLimits(max_length=2))

    def test_max_length_truncates(self, wide):
        limits = ExtractionLimits(max_length=2, on_limit="truncate")
        for path in extract_paths(wide, limits):
            assert path.length <= 2

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            ExtractionLimits(max_length=0)
        with pytest.raises(ValueError):
            ExtractionLimits(max_paths=0)
        with pytest.raises(ValueError):
            ExtractionLimits(on_limit="explode")


class TestVariants:
    def test_parallel_matches_sequential(self, govtrack):
        sequential = extract_paths(govtrack, parallel=False)
        parallel = extract_paths(govtrack, parallel=True)
        assert sorted(p.text() for p in sequential) == \
            sorted(p.text() for p in parallel)

    def test_iter_paths_lazy_equivalent(self, govtrack):
        assert sorted(p.text() for p in iter_paths(govtrack)) == \
            sorted(p.text() for p in extract_paths(govtrack))

    def test_node_ids_attached(self, govtrack):
        for path in extract_paths(govtrack):
            assert path.node_ids is not None
            assert len(path.node_ids) == path.length
            for position, node_id in enumerate(path.node_ids):
                assert govtrack.label_of(node_id) == path.nodes[position]

    def test_query_graph_paths_keep_variables(self, q2):
        paths = query_paths(QueryGraph() if False else q2)
        assert any(not p.is_ground for p in paths)
