"""Unit tests for exact graph edit distance."""

import pytest

from repro.baselines.ged import GedCosts, graph_edit_distance
from repro.rdf.graph import DataGraph


def graph(*triples):
    return DataGraph.from_triples(
        [(f"http://x/{s}", f"http://x/{p}", f"http://x/{o}")
         for s, p, o in triples])


class TestIdentities:
    def test_identical_graphs_zero(self):
        a = graph(("a", "p", "b"), ("b", "q", "c"))
        b = graph(("a", "p", "b"), ("b", "q", "c"))
        assert graph_edit_distance(a, b) == 0.0

    def test_empty_graphs(self):
        assert graph_edit_distance(DataGraph(), DataGraph()) == 0.0

    def test_empty_vs_one_edge(self):
        cost = graph_edit_distance(DataGraph(), graph(("a", "p", "b")))
        # two node insertions + one edge insertion
        assert cost == 3.0


class TestKnownDistances:
    def test_single_node_relabel(self):
        a = graph(("a", "p", "b"))
        b = graph(("a", "p", "c"))
        assert graph_edit_distance(a, b) == 1.0

    def test_single_edge_relabel(self):
        a = graph(("a", "p", "b"))
        b = graph(("a", "q", "b"))
        assert graph_edit_distance(a, b) == 1.0

    def test_extra_edge_and_node(self):
        a = graph(("a", "p", "b"))
        b = graph(("a", "p", "b"), ("b", "q", "c"))
        assert graph_edit_distance(a, b) == 2.0

    def test_symmetric_for_uniform_costs(self):
        a = graph(("a", "p", "b"), ("b", "q", "c"))
        b = graph(("a", "p", "b"))
        assert graph_edit_distance(a, b) == graph_edit_distance(b, a)

    def test_triangle_inequality_spot(self):
        a = graph(("a", "p", "b"))
        b = graph(("a", "p", "c"))
        c = graph(("x", "p", "c"))
        ab = graph_edit_distance(a, b)
        bc = graph_edit_distance(b, c)
        ac = graph_edit_distance(a, c)
        assert ac <= ab + bc


class TestCosts:
    def test_custom_costs(self):
        a = graph(("a", "p", "b"))
        b = graph(("a", "p", "c"))
        costs = GedCosts(node_substitution=5.0)
        # relabel (5) vs delete b + its edge, insert c + its edge (4).
        assert graph_edit_distance(a, b, costs=costs) == 4.0

    def test_substitution_capped_by_del_plus_ins(self):
        a = graph(("a", "p", "b"))
        b = graph(("a", "p", "c"))
        costs = GedCosts(node_substitution=100.0)
        # delete b (1) + its edge (1) + insert c (1) + its edge (1).
        assert graph_edit_distance(a, b, costs=costs) == 4.0


class TestGuards:
    def test_max_nodes_guard(self):
        big = DataGraph.from_triples(
            [(f"http://x/n{i}", "http://x/p", f"http://x/n{i + 1}")
             for i in range(20)])
        with pytest.raises(ValueError):
            graph_edit_distance(big, big, max_nodes=10)
