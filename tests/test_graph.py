"""Unit tests for DataGraph / QueryGraph (Definitions 1-2)."""

import pytest

from repro.rdf.graph import DataGraph, Edge, QueryGraph
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.triples import Triple


def uri(name):
    return URI(f"http://x/{name}")


class TestConstruction:
    def test_add_triple_merges_nodes_by_label(self):
        g = DataGraph()
        g.add_triple(uri("a"), uri("p"), uri("b"))
        g.add_triple(uri("a"), uri("q"), uri("c"))
        assert g.node_count() == 3
        assert g.edge_count() == 2

    def test_duplicate_triple_ignored(self):
        g = DataGraph()
        g.add_triple(uri("a"), uri("p"), uri("b"))
        g.add_triple(uri("a"), uri("p"), uri("b"))
        assert g.edge_count() == 1

    def test_parallel_edges_with_distinct_labels(self):
        g = DataGraph()
        g.add_triple(uri("a"), uri("p"), uri("b"))
        g.add_triple(uri("a"), uri("q"), uri("b"))
        assert g.edge_count() == 2

    def test_add_node_always_mints_fresh(self):
        g = DataGraph()
        first = g.add_node(Literal("Term"))
        second = g.add_node(Literal("Term"))
        assert first != second
        assert g.node_count() == 2

    def test_node_for_reuses(self):
        g = DataGraph()
        assert g.node_for(uri("a")) == g.node_for(uri("a"))

    def test_variables_rejected_in_data_graph(self):
        g = DataGraph()
        with pytest.raises(ValueError):
            g.add_triple("?v", uri("p"), uri("b"))

    def test_literal_edge_label_rejected(self):
        g = DataGraph()
        a = g.add_node(uri("a"))
        b = g.add_node(uri("b"))
        with pytest.raises(ValueError):
            g.add_edge(a, Literal("p"), b)

    def test_edge_to_unknown_node_rejected(self):
        g = DataGraph()
        a = g.add_node(uri("a"))
        with pytest.raises(KeyError):
            g.add_edge(a, uri("p"), 999)

    def test_from_triples(self):
        g = DataGraph.from_triples(
            [(uri("a"), uri("p"), uri("b"))], name="tiny")
        assert g.name == "tiny"
        assert g.edge_count() == 1


class TestInspection:
    @pytest.fixture
    def diamond(self):
        g = DataGraph()
        g.add_triples([
            (uri("s"), uri("p"), uri("l")),
            (uri("s"), uri("p"), uri("r")),
            (uri("l"), uri("q"), uri("t")),
            (uri("r"), uri("q"), uri("t")),
        ])
        return g

    def test_triples_roundtrip(self, diamond):
        assert set(diamond.triples()) == {
            Triple(uri("s"), uri("p"), uri("l")),
            Triple(uri("s"), uri("p"), uri("r")),
            Triple(uri("l"), uri("q"), uri("t")),
            Triple(uri("r"), uri("q"), uri("t")),
        }

    def test_degrees(self, diamond):
        s = diamond.node_for(uri("s"))
        t = diamond.node_for(uri("t"))
        assert diamond.out_degree(s) == 2
        assert diamond.in_degree(s) == 0
        assert diamond.in_degree(t) == 2

    def test_contains_node_edge_triple_label(self, diamond):
        s = diamond.node_for(uri("s"))
        l = diamond.node_for(uri("l"))
        assert s in diamond
        assert Edge(s, uri("p"), l) in diamond
        assert Triple(uri("s"), uri("p"), uri("l")) in diamond
        assert uri("s") in diamond
        assert uri("nope") not in diamond

    def test_label_sets(self, diamond):
        assert uri("p") in diamond.edge_labels()
        assert uri("s") in diamond.node_labels()

    def test_nodes_labelled(self):
        g = DataGraph()
        g.add_node(Literal("Term"))
        g.add_node(Literal("Term"))
        assert len(g.nodes_labelled(Literal("Term"))) == 2

    def test_len_is_edge_count(self, diamond):
        assert len(diamond) == 4


class TestTopology:
    def test_sources_sinks(self):
        g = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("c")),
        ])
        assert [g.label_of(n) for n in g.sources()] == [uri("a")]
        assert [g.label_of(n) for n in g.sinks()] == [uri("c")]

    def test_cycle_has_no_sources_hubs_promoted(self):
        g = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("a")),
            (uri("a"), uri("p"), uri("c")),
        ])
        assert g.sources() == []
        hubs = g.hubs()
        # a has out 2 / in 1 = +1, the maximum.
        assert [g.label_of(n) for n in hubs] == [uri("a")]
        assert g.path_roots() == hubs

    def test_path_roots_prefers_sources(self, govtrack):
        assert govtrack.path_roots() == govtrack.sources()

    def test_govtrack_shape(self, govtrack):
        assert len(govtrack.sources()) == 7
        assert len(govtrack.sinks()) == 2

    def test_hubs_exclude_pure_sinks(self):
        g = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("a")),
        ])
        hubs = g.hubs()
        assert hubs  # ties allowed, but never empty for a cyclic graph


class TestSubgraphAndCopy:
    def test_subgraph_induces_edges(self):
        g = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("c")),
        ])
        keep = [g.node_for(uri("a")), g.node_for(uri("b"))]
        sub = g.subgraph(keep)
        assert sub.node_count() == 2
        assert sub.edge_count() == 1

    def test_copy_is_deep_for_structure(self):
        g = DataGraph.from_triples([(uri("a"), uri("p"), uri("b"))])
        clone = g.copy()
        clone.add_triple(uri("b"), uri("p"), uri("c"))
        assert g.edge_count() == 1
        assert clone.edge_count() == 2

    def test_copy_preserves_labels(self, govtrack):
        clone = govtrack.copy()
        assert set(clone.triples()) == set(govtrack.triples())


class TestQueryGraph:
    def test_variables_allowed(self):
        q = QueryGraph()
        q.add_triple("?s", uri("p"), "?o")
        assert q.variables() == {Variable("s"), Variable("o")}

    def test_variable_edge_labels_allowed(self):
        q = QueryGraph()
        q.add_triple(uri("a"), "?e", uri("b"))
        assert Variable("e") in q.variables()

    def test_constants(self):
        q = QueryGraph()
        q.add_triple("?s", uri("p"), Literal("Male"))
        assert q.constants() == {Literal("Male")}

    def test_is_query_flag(self):
        assert QueryGraph().is_query
        assert not DataGraph().is_query

    def test_subgraph_of_query_is_query(self):
        q = QueryGraph()
        q.add_triple("?s", uri("p"), "?o")
        assert isinstance(q.subgraph(list(q.nodes())), QueryGraph)


class TestAccessAccountedGraph:
    def _view(self, govtrack):
        from repro.rdf.latency import AccessAccountedGraph
        return AccessAccountedGraph(govtrack)

    def test_traversal_charged(self, govtrack):
        view = self._view(govtrack)
        node = next(iter(view.nodes()))
        view.out_edges(node)
        view.in_edges(node)
        assert view.accesses == 2

    def test_metadata_free(self, govtrack):
        view = self._view(govtrack)
        list(view.nodes())
        view.node_count()
        view.label_of(0)
        view.sources()
        assert view.accesses == 0

    def test_offline_suspends(self, govtrack):
        view = self._view(govtrack)
        with view.offline():
            view.out_edges(0)
        assert view.accesses == 0
        view.out_edges(0)
        assert view.accesses == 1

    def test_reset(self, govtrack):
        view = self._view(govtrack)
        view.out_edges(0)
        view.reset()
        assert view.accesses == 0

    def test_results_identical_to_plain_graph(self, govtrack):
        view = self._view(govtrack)
        assert view.out_edges(3) == govtrack.out_edges(3)
        assert view.path_roots() == govtrack.path_roots()

    def test_baselines_run_on_view(self, govtrack, q1):
        from repro.baselines import DogmaMatcher
        view = self._view(govtrack)
        with view.offline():
            matcher = DogmaMatcher(view)
        matches = matcher.search(q1)
        assert len(matches) == 1
        assert view.accesses > 0

    def test_latency_sleeps(self, govtrack):
        import time
        from repro.rdf.latency import AccessAccountedGraph
        view = AccessAccountedGraph(govtrack, access_latency=0.002)
        started = time.perf_counter()
        view.out_edges(0)
        assert time.perf_counter() - started >= 0.002
