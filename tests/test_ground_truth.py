"""Unit tests for the relevance oracle (the expert stand-in of §6.3)."""

import pytest

from repro.evaluation.ground_truth import (RelevanceOracle, answer_data_nodes,
                                           relax_query)
from repro.rdf.graph import QueryGraph
from repro.rdf.terms import Literal, Variable


GOV = "http://example.org/govtrack/"


class TestRelaxQuery:
    def test_drop_variants(self, q1):
        variants = relax_query(q1)
        dropped = [v for v in variants if v.edge_count() == q1.edge_count() - 1]
        assert len(dropped) == q1.edge_count()

    def test_widen_variants_replace_constants(self, q1):
        variants = relax_query(q1)
        widened = [v for v in variants
                   if v.edge_count() == q1.edge_count()
                   and len(v.variables()) == len(q1.variables()) + 1]
        # q1 has 3 constant node labels: CarlaBunes, Health Care, Male.
        assert len(widened) == 3

    def test_single_pattern_not_dropped_to_empty(self):
        q = QueryGraph()
        q.add_triple("?a", GOV + "gender", Literal("Male"))
        variants = relax_query(q)
        assert all(v.edge_count() >= 1 for v in variants)

    def test_fresh_variables_do_not_collide(self, q2):
        for variant in relax_query(q2):
            names = [v.value for v in variant.variables()]
            assert len(names) == len(set(names))


class TestOracle:
    @pytest.fixture(scope="class")
    def oracle(self, govtrack):
        return RelevanceOracle(govtrack)

    def test_q1_exact_ground_truth(self, oracle, q1):
        truth = oracle.ground_truth(q1, key="q1")
        assert truth.relaxation_level == 0
        assert len(truth) == 1

    def test_q2_needs_relaxation(self, oracle, q2):
        truth = oracle.ground_truth(q2, key="q2")
        assert truth.relaxation_level >= 1
        assert len(truth) >= 1

    def test_cache_by_key(self, oracle, q1):
        first = oracle.ground_truth(q1, key="cached")
        second = oracle.ground_truth(q1, key="cached")
        assert first is second

    def test_judge_nodes_threshold(self, oracle):
        from repro.evaluation.ground_truth import GroundTruth
        truth = GroundTruth((frozenset({1, 2, 3, 4}),), 0)
        # Full containment (plus extras) passes; 3/4 = 0.75 < 0.8 fails.
        assert oracle.judge_nodes(truth, frozenset({1, 2, 3, 4, 99}))
        assert not oracle.judge_nodes(truth, frozenset({1, 2, 3}))

    def test_judge_threshold_boundary(self, govtrack):
        from repro.evaluation.ground_truth import GroundTruth
        oracle = RelevanceOracle(govtrack, overlap_threshold=0.75)
        truth = GroundTruth((frozenset({1, 2, 3, 4}),), 0)
        assert oracle.judge_nodes(truth, frozenset({1, 2, 3}))
        strict = RelevanceOracle(govtrack, overlap_threshold=1.0)
        assert not strict.judge_nodes(truth, frozenset({1, 2, 3}))

    def test_invalid_threshold(self, govtrack):
        with pytest.raises(ValueError):
            RelevanceOracle(govtrack, overlap_threshold=0.0)

    def test_sama_top_answer_judged_relevant(self, oracle, govtrack_engine,
                                             q1):
        truth = oracle.ground_truth(q1, key="q1-judge")
        answer = govtrack_engine.query(q1, k=1)[0]
        assert oracle.judge_sama_answer(truth, answer)

    def test_unrelated_answer_judged_irrelevant(self, oracle,
                                                govtrack_engine, q1, q2):
        truth = oracle.ground_truth(q1, key="q1-judge2")
        # An answer to a *different* question should not count for q1's
        # ground truth unless it happens to contain the q1 embedding.
        q = QueryGraph()
        q.add_triple("?v", GOV + "gender", Literal("Male"))
        gender_only = govtrack_engine.query(q, k=1)[0]
        assert not oracle.judge_sama_answer(truth, gender_only)

    def test_baseline_match_judged(self, oracle, govtrack, q1):
        from repro.baselines import DogmaMatcher
        truth = oracle.ground_truth(q1, key="q1-judge3")
        match = DogmaMatcher(govtrack).search(q1)[0]
        assert oracle.judge_match(truth, match)

    def test_answer_data_nodes(self, govtrack_engine, q1):
        answer = govtrack_engine.query(q1, k=1)[0]
        nodes = answer_data_nodes(answer)
        assert nodes
        labels = {govtrack_engine.index.metadata and n for n in nodes}
        assert all(isinstance(n, int) for n in nodes)


class TestRR:
    def test_rr_is_one_on_govtrack(self, govtrack, govtrack_engine, q1, q2):
        """The §6.3 headline: Sama's RR = 1 (monotonicity never violated)."""
        from repro.evaluation.metrics import reciprocal_rank
        oracle = RelevanceOracle(govtrack)
        for query in (q1, q2):
            truth = oracle.ground_truth(query)
            answers = govtrack_engine.query(query, k=10)
            flags = [oracle.judge_sama_answer(truth, a) for a in answers]
            assert reciprocal_rank(flags) == 1.0
