"""Tests for the dense-ID hot path: interned records, the per-query
alignment memo, parallel clustering, read-ahead, and the pair-cache fix.

The load-bearing invariant throughout: every fast-path feature is an
*optimisation*, so rankings, scores, bindings, and budget semantics must
be indistinguishable from the plain engine.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets import dataset, lubm_queries
from repro.engine import EngineConfig, SamaEngine
from repro.engine.clustering import AlignmentMemo, build_clusters
from repro.engine.search import _JoinSpace
from repro.index.builder import build_index
from repro.index.labels import LabelInterner
from repro.index.pathindex import PathIndex
from repro.index.thesaurus import default_thesaurus
from repro.parallel import chunked, shared_executor, worker_count
from repro.paths.alignment import align
from repro.paths.model import Path
from repro.resilience.budget import Budget
from repro.resilience.errors import IndexCorruptError
from repro.rdf.terms import Literal, URI
from repro.scoring.weights import PAPER_WEIGHTS
from repro.storage.serializer import CodecError


def _uri_path(*names, node_ids=None):
    nodes = [URI(f"http://x/{name}") for name in names]
    edges = [URI(f"http://x/e{i}") for i in range(len(names) - 1)]
    return Path(nodes, edges, node_ids=node_ids)


# -- label interner ----------------------------------------------------------


class TestLabelInterner:
    def test_dense_first_use_ids(self):
        interner = LabelInterner()
        a, b = URI("http://x/a"), URI("http://x/b")
        assert interner.intern(a) == 0
        assert interner.intern(b) == 1
        assert interner.intern(a) == 0
        assert interner.lookup(1) is b
        assert len(interner) == 2

    def test_intern_path_attaches_ids(self):
        interner = LabelInterner()
        path = _uri_path("a", "b", "a")
        interner.intern_path(path)
        assert list(path.label_ids) == [0, 1, 0]
        assert path.node_label_id_set() == frozenset({0, 1})

    def test_save_load_preserves_ids(self, tmp_path):
        interner = LabelInterner()
        terms = [URI("http://x/a"), Literal("two words"),
                 Literal("fr", language="fr"),
                 Literal("7", datatype=URI("http://x/int"))]
        ids = [interner.intern(term) for term in terms]
        target = tmp_path / "labels.dict"
        interner.save(target)
        reloaded = LabelInterner.load(target)
        assert len(reloaded) == len(interner)
        assert [reloaded.intern(term) for term in terms] == ids

    def test_load_rejects_bad_magic(self, tmp_path):
        target = tmp_path / "bogus.dict"
        target.write_bytes(b"NOPE....")
        with pytest.raises(CodecError):
            LabelInterner.load(target)

    def test_record_roundtrip(self):
        interner = LabelInterner()
        path = _uri_path("a", "b", "c", node_ids=(4, 9, 300))
        blob = interner.encode_path(path)
        decoded = interner.decode_path(blob)
        assert decoded == path
        assert decoded.node_ids == (4, 9, 300)
        assert list(decoded.label_ids) == [interner.intern(n)
                                           for n in path.nodes]
        # Decoded labels are the interner's shared Term objects.
        for node, label_id in zip(decoded.nodes, decoded.label_ids):
            assert node is interner.lookup(label_id)

    def test_record_roundtrip_without_node_ids(self):
        interner = LabelInterner()
        path = _uri_path("x", "y")
        decoded = interner.decode_path(interner.encode_path(path))
        assert decoded == path
        assert decoded.node_ids is None

    def test_decode_rejects_unknown_id(self):
        interner = LabelInterner()
        blob = interner.encode_path(_uri_path("a", "b"))
        fresh = LabelInterner()  # empty dictionary: ids out of range
        with pytest.raises(CodecError):
            fresh.decode_path(blob)


class TestInternedIndex:
    def test_reopened_index_decodes_identically(self, govtrack, tmp_path):
        directory = str(tmp_path / "interned")
        built, _stats = build_index(govtrack, directory)
        original = sorted(p.text() for p in built.all_paths())
        with_ids = [p.label_ids is not None for p in built.all_paths()]
        assert all(with_ids)
        built.close()
        reopened = PathIndex.open(directory)
        assert sorted(p.text() for p in reopened.all_paths()) == original
        assert all(p.label_ids is not None for p in reopened.all_paths())
        reopened.close()

    def test_interned_matches_inline_format(self, govtrack, tmp_path):
        interned, _ = build_index(govtrack, str(tmp_path / "i"))
        inline, _ = build_index(govtrack, str(tmp_path / "p"),
                                intern_records=False)
        assert sorted(p.text() for p in interned.all_paths()) == \
            sorted(p.text() for p in inline.all_paths())
        interned.close()
        inline.close()

    def test_missing_label_dictionary_is_corruption(self, govtrack, tmp_path):
        directory = str(tmp_path / "broken")
        built, _stats = build_index(govtrack, directory)
        built.close()
        (tmp_path / "broken" / "labels.dict").unlink()
        with pytest.raises(IndexCorruptError):
            PathIndex.open(directory)


# -- pair-cache key regression ----------------------------------------------


class _StubIG:
    def edges(self):
        return []

    def neighbors(self, index):
        return []

    def has_edge(self, i, j):
        return False


class _StubPrepared:
    ig = _StubIG()


def test_pair_cache_keys_do_not_collide_past_2_20():
    """Regression: the ψ pair cache used a fixed 2^20 packing stride, so
    uid pairs (1, 2) and (0, 2^20 + 2) collided and the second pair
    read the first pair's cached |χ|."""
    from repro.engine.clustering import Cluster, ClusterEntry

    def entry(uid, *names):
        path = _uri_path(*names)
        return ClusterEntry(offset=uid, path=path,
                            alignment=align(path, path), score=0.0, uid=uid)

    entry_a = entry(1, "x", "y")                  # |χ| with entry_b: 1
    entry_b = entry(2, "y", "z")
    entry_c = entry(0, "u", "v", "w")             # |χ| with entry_d: 2
    entry_d = entry(2 ** 20 + 2, "u", "v", "q")
    clusters = [
        Cluster(query_path=_uri_path("q"), entries=[entry_a, entry_c],
                missing_penalty=1.0),
        Cluster(query_path=_uri_path("r"), entries=[entry_b, entry_d],
                missing_penalty=1.0),
    ]
    space = _JoinSpace(_StubPrepared(), clusters, PAPER_WEIGHTS)
    assert space._uid_stride == 2 ** 20 + 3
    # Prime the cache with the small-uid pair, then probe the pair that
    # collided under the old stride.
    assert space.common_nodes(entry_a, entry_b) == 1
    assert space.common_nodes(entry_c, entry_d) == 2
    # Symmetry and cache stability.
    assert space.common_nodes(entry_d, entry_c) == 2
    assert space.common_nodes(entry_b, entry_a) == 1


# -- fast path vs plain engine equivalence -----------------------------------


@pytest.fixture(scope="module")
def ab_engines(tmp_path_factory):
    """A fast-path engine and a fully switched-off engine, the latter
    over an inline-term (pre-overhaul format) index."""
    graph = dataset("lubm").build(1200, seed=3)
    root = tmp_path_factory.mktemp("hotpath-ab")
    thesaurus = default_thesaurus()
    fast_index, _ = build_index(graph, str(root / "fast"),
                                thesaurus=thesaurus)
    base_index, _ = build_index(graph, str(root / "base"),
                                thesaurus=thesaurus, intern_records=False)
    fast = SamaEngine(fast_index, config=EngineConfig(), thesaurus=thesaurus)
    base = SamaEngine(base_index, config=EngineConfig(fast_path=False),
                      thesaurus=thesaurus)
    yield fast, base
    fast.close()
    base.close()


@pytest.mark.parametrize("qid", ["Q1", "Q2", "Q4"])
def test_fast_path_rankings_identical(ab_engines, qid):
    fast, base = ab_engines
    spec = next(s for s in lubm_queries() if s.qid == qid)
    fast_answers = fast.query(spec.graph, k=10)
    base_answers = base.query(spec.graph, k=10)
    assert [(a.score, str(a)) for a in fast_answers] == \
        [(a.score, str(a)) for a in base_answers]


def test_fast_path_rankings_identical_govtrack(govtrack_engine, q1):
    plain = SamaEngine(govtrack_engine.index,
                       config=EngineConfig(fast_path=False),
                       thesaurus=govtrack_engine.thesaurus)
    fast_answers = govtrack_engine.query(q1, k=8)
    base_answers = plain.query(q1, k=8)
    assert [(a.score, str(a)) for a in fast_answers] == \
        [(a.score, str(a)) for a in base_answers]


# -- alignment memo ----------------------------------------------------------


class TestAlignmentMemo:
    def test_counts_hits_and_misses(self):
        memo = AlignmentMemo()
        key = (7, 3, _uri_path("q"))
        assert memo.get(key) is None
        alignment = align(_uri_path("a"), _uri_path("q"))
        memo.put(key, alignment, 1.5)
        assert memo.get(key) == (alignment, 1.5)
        assert memo.hits == 1 and memo.misses == 1 and len(memo) == 1

    def test_disabled_memo_never_caches(self):
        memo = AlignmentMemo.disabled()
        key = (7, 3, _uri_path("q"))
        memo.put(key, align(_uri_path("a"), _uri_path("q")), 1.5)
        assert memo.get(key) is None
        assert memo.hits == 0

    def test_memo_shared_across_clustering_runs(self, govtrack_engine, q1):
        engine = govtrack_engine
        prepared = engine.prepare(q1)
        memo = AlignmentMemo()
        kwargs = dict(weights=engine.config.weights, matcher=engine.matcher,
                      memo=memo)
        first = build_clusters(prepared, engine.index, **kwargs)
        aligned = memo.misses
        assert aligned > 0
        second = build_clusters(prepared, engine.index, **kwargs)
        # The re-run is served entirely from the memo...
        assert memo.misses == aligned
        assert memo.hits >= aligned
        # ...and reproduces the clusters exactly.
        assert [[(e.offset, e.uid, e.score) for e in c.entries]
                for c in first] == \
            [[(e.offset, e.uid, e.score) for e in c.entries]
             for c in second]


# -- parallel clustering -----------------------------------------------------


class TestParallelClustering:
    def _cluster_shape(self, clusters):
        return [[(e.offset, e.path.length, e.uid, e.score)
                 for e in c.entries] for c in clusters]

    def test_parallel_matches_serial(self, lubm_engine):
        spec = next(s for s in lubm_queries() if s.qid == "Q2")
        prepared = lubm_engine.prepare(spec.graph)
        kwargs = dict(weights=lubm_engine.config.weights,
                      matcher=lubm_engine.matcher)
        serial = build_clusters(prepared, lubm_engine.index, **kwargs)
        with ThreadPoolExecutor(max_workers=3) as pool:
            parallel = build_clusters(prepared, lubm_engine.index,
                                      executor=pool, parallel_threshold=2,
                                      **kwargs)
        assert self._cluster_shape(serial) == self._cluster_shape(parallel)

    def test_parallel_respects_expired_budget(self, lubm_engine):
        spec = next(s for s in lubm_queries() if s.qid == "Q2")
        prepared = lubm_engine.prepare(spec.graph)
        kwargs = dict(weights=lubm_engine.config.weights,
                      matcher=lubm_engine.matcher)
        budget = Budget(deadline_ms=0)
        with ThreadPoolExecutor(max_workers=3) as pool:
            clusters = build_clusters(prepared, lubm_engine.index,
                                      executor=pool, parallel_threshold=2,
                                      budget=budget, **kwargs)
        # One cluster per query path, all degraded to empty, trip noted.
        assert len(clusters) == len(prepared.paths)
        assert all(c.is_empty for c in clusters)
        assert budget.reasons

    def test_engine_workers_config_end_to_end(self, lubm_small, tmp_path):
        engine = SamaEngine.from_graph(
            lubm_small, directory=str(tmp_path / "workers"),
            config=EngineConfig(workers=2))
        try:
            spec = next(s for s in lubm_queries() if s.qid == "Q1")
            answers = engine.query(spec.graph, k=5)
            assert list(answers)
        finally:
            engine.close()


# -- worker pool plumbing ----------------------------------------------------


class TestWorkerPool:
    def test_worker_count_env_override(self, monkeypatch):
        monkeypatch.setenv("SAMA_WORKERS", "3")
        assert worker_count() == 3

    def test_single_worker_means_no_pool(self, monkeypatch):
        monkeypatch.setenv("SAMA_WORKERS", "1")
        assert shared_executor() is None

    def test_explicit_workers_beat_env(self, monkeypatch):
        monkeypatch.setenv("SAMA_WORKERS", "1")
        pool = shared_executor(2)
        assert pool is not None

    def test_chunked(self):
        assert chunked(list(range(5)), 2) == [[0, 1], [2, 3], [4]]
        assert chunked([], 4) == []

    def test_small_extraction_skips_pool(self, monkeypatch, govtrack):
        import repro.paths.extraction as extraction

        calls = []
        monkeypatch.setattr(extraction, "shared_executor",
                            lambda *a, **k: calls.append(1) or None)
        assert len(govtrack.path_roots()) < extraction.PARALLEL_MIN_ROOTS
        serial = [p.text() for p in extraction.extract_paths(govtrack)]
        small = [p.text() for p in
                 extraction.extract_paths(govtrack, parallel=True)]
        assert small == serial
        assert calls == []  # below the threshold the pool is never asked

    def test_parallel_extraction_matches_serial(self, monkeypatch):
        import repro.paths.extraction as extraction

        graph = dataset("lubm").build(900, seed=5)
        assert len(graph.path_roots()) >= extraction.PARALLEL_MIN_ROOTS
        serial = [p.text() for p in extraction.extract_paths(graph)]
        with ThreadPoolExecutor(max_workers=3) as pool:
            monkeypatch.setattr(extraction, "shared_executor",
                                lambda *a, **k: pool)
            parallel = [p.text() for p in
                        extraction.extract_paths(graph, parallel=True)]
        assert parallel == serial


# -- buffer pool read-ahead --------------------------------------------------


@pytest.fixture(scope="module")
def scan_index_dir(tmp_path_factory):
    """An on-disk index big enough to span many pages."""
    graph = dataset("lubm").build(2000, seed=11)
    directory = tmp_path_factory.mktemp("readahead") / "idx"
    index, _stats = build_index(graph, str(directory))
    index.close()
    return str(directory)


class TestReadAhead:
    def _scan_stats(self, directory, read_ahead):
        index = PathIndex.open(directory, read_ahead=read_ahead)
        index.clear_cache()
        for offset in index.all_offsets():
            index.path_at(offset)
        stats = index.cache_stats
        index.close()
        return stats

    def test_sequential_scan_prefetches(self, scan_index_dir):
        stats = self._scan_stats(scan_index_dir, read_ahead=4)
        assert stats.prefetches > 0

    def test_read_ahead_cuts_demand_misses(self, scan_index_dir):
        without = self._scan_stats(scan_index_dir, read_ahead=0)
        with_ra = self._scan_stats(scan_index_dir, read_ahead=8)
        assert with_ra.misses < without.misses

    def test_read_ahead_preserves_content(self, scan_index_dir):
        plain = PathIndex.open(scan_index_dir, read_ahead=0)
        ahead = PathIndex.open(scan_index_dir, read_ahead=8)
        assert [p.text() for p in plain.all_paths()] == \
            [p.text() for p in ahead.all_paths()]
        plain.close()
        ahead.close()
