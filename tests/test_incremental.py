"""Tests for incremental index maintenance (§7 extension).

The correctness criterion throughout: after any sequence of triple
insertions, the incremental index's live paths equal those of an index
rebuilt from scratch over the final graph.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import SamaEngine
from repro.index.incremental import IncrementalIndex
from repro.paths.extraction import ExtractionLimits, extract_paths
from repro.rdf.graph import DataGraph
from repro.rdf.terms import Literal


def uri(name):
    return f"http://x/{name}"


def live_texts(index) -> list[str]:
    return sorted(p.text() for p in index.all_paths())


def rebuilt_texts(graph) -> list[str]:
    limits = ExtractionLimits(max_length=32, max_paths=200_000,
                              on_limit="truncate")
    return sorted(p.text() for p in extract_paths(graph, limits=limits))


class TestSingleUpdates:
    @pytest.fixture
    def chain(self, tmp_path):
        graph = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("c")),
        ])
        return IncrementalIndex(graph, str(tmp_path / "inc"))

    def test_initial_state_matches_extraction(self, chain):
        assert live_texts(chain) == rebuilt_texts(chain.graph)

    def test_extend_at_sink(self, chain):
        chain.add_triple(uri("c"), uri("q"), uri("d"))
        assert live_texts(chain) == rebuilt_texts(chain.graph)
        assert any(text.endswith("d") for text in live_texts(chain))

    def test_new_source_prepended(self, chain):
        chain.add_triple(uri("z"), uri("q"), uri("a"))
        # a is no longer a source; z is.
        assert live_texts(chain) == rebuilt_texts(chain.graph)
        assert all(text.startswith("z") for text in live_texts(chain))

    def test_branch_mid_chain(self, chain):
        chain.add_triple(uri("b"), uri("r"), uri("x")),
        assert live_texts(chain) == rebuilt_texts(chain.graph)
        assert len(chain.all_paths()) == 2

    def test_duplicate_triple_is_noop(self, chain):
        before = live_texts(chain)
        stats_before = chain.stats.paths_invalidated
        chain.add_triple(uri("a"), uri("p"), uri("b"))
        assert live_texts(chain) == before
        assert chain.stats.paths_invalidated == stats_before

    def test_disconnected_component(self, chain):
        chain.add_triple(uri("m"), uri("p"), uri("n"))
        assert live_texts(chain) == rebuilt_texts(chain.graph)

    def test_literal_objects(self, chain):
        chain.add_triple(uri("c"), uri("gender"), Literal("Male"))
        assert live_texts(chain) == rebuilt_texts(chain.graph)

    def test_stats_accumulate(self, chain):
        chain.add_triple(uri("c"), uri("q"), uri("d"))
        chain.add_triple(uri("d"), uri("q"), uri("e"))
        assert chain.stats.triples_added == 2
        assert chain.stats.paths_invalidated >= 2
        assert chain.stats.dead_bytes > 0
        assert chain.stats.live_efficiency == 1.0


class TestCycleFallback:
    def test_cycle_creation_triggers_rebuild(self, tmp_path):
        graph = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
        ])
        index = IncrementalIndex(graph, str(tmp_path / "inc"))
        index.add_triple(uri("b"), uri("p"), uri("a"))  # graph now sourceless
        assert index.stats.full_rebuilds == 1
        assert live_texts(index) == rebuilt_texts(index.graph)

    def test_recovery_from_hub_mode(self, tmp_path):
        graph = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("a")),
        ])
        index = IncrementalIndex(graph, str(tmp_path / "inc"))
        assert index._hub_mode
        # A new source-ful component; updates keep correctness either way.
        index.add_triple(uri("x"), uri("p"), uri("y"))
        assert live_texts(index) == rebuilt_texts(index.graph)


class TestLookupSurface:
    def test_sink_lookup_respects_tombstones(self, tmp_path):
        graph = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
        ])
        index = IncrementalIndex(graph, str(tmp_path / "inc"))
        from repro.rdf.terms import URI
        assert len(index.offsets_with_sink(URI(uri("b")))) == 1
        index.add_triple(uri("b"), uri("p"), uri("c"))
        # The a-...-b path is gone; b is not a sink anymore.
        assert index.offsets_with_sink(URI(uri("b"))) == []
        assert len(index.offsets_with_sink(URI(uri("c")))) == 1

    def test_engine_runs_on_incremental_index(self, tmp_path, govtrack,
                                              q1):
        index = IncrementalIndex(govtrack.copy(), str(tmp_path / "inc"))
        engine = SamaEngine(index)
        first = engine.query(q1, k=1)[0]
        assert first.score == 2.0  # the GovTrack regression value
        # Live update: a new male sponsor of B1432 adds answers.
        index.add_triples([
            (uri("NewPerson"), "http://example.org/govtrack/sponsor",
             "http://example.org/govtrack/B1432"),
            (uri("NewPerson"), "http://example.org/govtrack/gender",
             Literal("Male")),
        ])
        answers = engine.query(q1, k=10)
        bound = {a.substitution().get(v).value
                 for a in answers
                 for v in a.substitution() if v.value == "v3"}
        assert any("NewPerson" in value for value in bound)

    def test_compact_preserves_content(self, tmp_path):
        graph = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("c")),
        ])
        index = IncrementalIndex(graph, str(tmp_path / "inc"))
        index.add_triple(uri("c"), uri("p"), uri("d"))
        index.add_triple(uri("x"), uri("p"), uri("a"))
        compacted = index.compact(str(tmp_path / "vacuumed"))
        assert live_texts(compacted) == live_texts(index)
        assert compacted.stats.dead_bytes == 0


class TestRandomisedEquivalence:
    """The strongest check: random insertion orders equal rebuilds."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_dag_insertions(self, seed, tmp_path):
        rng = random.Random(seed)
        nodes = [uri(f"n{i}") for i in range(10)]
        # Random DAG edges (src index < dst index keeps it acyclic, so
        # the incremental fast path stays active).
        candidates = [(nodes[i], uri(f"e{rng.randint(0, 2)}"), nodes[j])
                      for i in range(len(nodes))
                      for j in range(i + 1, len(nodes))]
        rng.shuffle(candidates)
        chosen = candidates[:18]
        start, rest = chosen[:4], chosen[4:]
        index = IncrementalIndex(DataGraph.from_triples(start),
                                 str(tmp_path / f"inc{seed}"))
        for triple in rest:
            index.add_triple(*triple)
            assert live_texts(index) == rebuilt_texts(index.graph)

    @pytest.mark.parametrize("seed", [11, 12])
    def test_random_insertions_with_cycles(self, seed, tmp_path):
        rng = random.Random(seed)
        nodes = [uri(f"n{i}") for i in range(6)]
        index = IncrementalIndex(
            DataGraph.from_triples([(nodes[0], uri("e"), nodes[1])]),
            str(tmp_path / f"cyc{seed}"))
        for _ in range(12):
            src = rng.choice(nodes)
            dst = rng.choice(nodes)
            if src == dst:
                continue
            index.add_triple(src, uri("e"), dst)
            assert live_texts(index) == rebuilt_texts(index.graph)


class TestRemoveTriple:
    @pytest.fixture
    def indexed(self, tmp_path):
        graph = DataGraph.from_triples([
            (uri("a"), uri("p"), uri("b")),
            (uri("b"), uri("p"), uri("c")),
            (uri("b"), uri("q"), uri("d")),
        ])
        return IncrementalIndex(graph, str(tmp_path / "del"))

    def test_remove_mid_edge(self, indexed):
        assert indexed.remove_triple(uri("b"), uri("q"), uri("d"))
        assert live_texts(indexed) == rebuilt_texts(indexed.graph)
        # No surviving path traverses the removed edge (the isolated
        # node d itself legitimately remains as a single-node path).
        assert all("b-q-d" not in text for text in live_texts(indexed))

    def test_remove_missing_triple_noop(self, indexed):
        before = live_texts(indexed)
        assert not indexed.remove_triple(uri("x"), uri("p"), uri("y"))
        assert live_texts(indexed) == before

    def test_remove_then_rebuild_equivalence(self, indexed):
        indexed.remove_triple(uri("a"), uri("p"), uri("b"))
        assert live_texts(indexed) == rebuilt_texts(indexed.graph)

    def test_add_then_remove_roundtrip(self, indexed):
        before = live_texts(indexed)
        indexed.add_triple(uri("c"), uri("r"), uri("e"))
        assert live_texts(indexed) != before
        assert indexed.remove_triple(uri("c"), uri("r"), uri("e"))
        assert live_texts(indexed) == rebuilt_texts(indexed.graph)

    @pytest.mark.parametrize("seed", [31, 32])
    def test_random_mixed_updates(self, seed, tmp_path):
        rng = random.Random(seed)
        nodes = [uri(f"n{i}") for i in range(8)]
        start = [(nodes[0], uri("e"), nodes[1]),
                 (nodes[1], uri("e"), nodes[2])]
        index = IncrementalIndex(DataGraph.from_triples(start),
                                 str(tmp_path / f"mix{seed}"))
        present = set(start)
        for _ in range(14):
            if present and rng.random() < 0.35:
                victim = rng.choice(sorted(present))
                index.remove_triple(*victim)
                present.discard(victim)
            else:
                i, j = rng.randrange(8), rng.randrange(8)
                if i == j:
                    continue
                triple = (nodes[i], uri("e"), nodes[j])
                index.add_triple(*triple)
                present.add(triple)
            assert live_texts(index) == rebuilt_texts(index.graph)
