"""Unit tests for the hypergraph, the path index and the builder (§6.1)."""

import json
import os

import pytest

from repro.index.builder import build_index
from repro.index.hypergraph import Hypergraph, hypergraph_of
from repro.index.pathindex import IndexCorruptError, PathIndex
from repro.paths.extraction import ExtractionLimits, extract_paths
from repro.paths.model import path_of
from repro.rdf.graph import DataGraph
from repro.rdf.terms import Literal, URI


class TestHypergraph:
    def test_counts(self):
        h = Hypergraph()
        h.add_vertex(1)
        h.add_hyperedge([1, 2, 3])
        assert h.vertex_count == 3
        assert h.hyperedge_count == 1

    def test_incidence(self):
        h = Hypergraph()
        e1 = h.add_hyperedge([1, 2])
        e2 = h.add_hyperedge([2, 3])
        assert h.incident_edges(2) == {e1, e2}
        assert h.degree(2) == 2
        assert h.degree(99) == 0

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph().add_hyperedge([])

    def test_hyperedge_lookup(self):
        h = Hypergraph()
        edge_id = h.add_hyperedge([5, 6])
        assert h.hyperedge(edge_id) == frozenset({5, 6})

    def test_fig5_mapping(self, govtrack):
        """Every stored path becomes one hyperedge (Fig. 5)."""
        paths = extract_paths(govtrack)
        h = hypergraph_of(govtrack, paths)
        assert h.vertex_count == govtrack.node_count()
        assert h.hyperedge_count == len(paths)

    def test_requires_node_ids(self, govtrack):
        with pytest.raises(ValueError):
            hypergraph_of(govtrack, [path_of("A", "p", "B")])


class TestBuilder:
    def test_stats_match_graph(self, govtrack, index_dir):
        index, stats = build_index(govtrack, index_dir)
        assert stats.triple_count == govtrack.edge_count()
        assert stats.hv_count == govtrack.node_count()
        assert stats.he_count == 14
        assert stats.path_count == 14
        assert stats.source_count == 7
        assert stats.sink_count == 2
        assert not stats.truncated
        assert stats.size_bytes > 0
        assert stats.build_seconds > 0
        index.close()

    def test_step_timings_recorded(self, govtrack, index_dir):
        index, stats = build_index(govtrack, index_dir)
        assert set(stats.step_seconds) == {
            "hash_labels", "find_sources_sinks", "compute_paths"}
        index.close()

    def test_table1_row_shape(self, govtrack, index_dir):
        _index, stats = build_index(govtrack, index_dir)
        row = stats.table1_row()
        assert row[0] == "govtrack"
        assert row[1] == 22

    def test_truncation_reported(self, index_dir):
        g = DataGraph()
        triples = []
        for level in range(4):
            for node in range(2 ** level):
                parent = f"http://x/n{level}_{node}"
                triples.append((parent, "http://x/p",
                                f"http://x/n{level+1}_{node*2}"))
                triples.append((parent, "http://x/p",
                                f"http://x/n{level+1}_{node*2+1}"))
        g.add_triples(triples)
        limits = ExtractionLimits(max_paths=5, on_limit="truncate")
        index, stats = build_index(g, index_dir, limits=limits)
        assert stats.truncated
        assert index.path_count == 5
        index.close()


class TestPathIndex:
    def test_lookup_by_sink(self, tiny_index):
        paths = tiny_index.paths_with_sink(Literal("Male"))
        assert len(paths) == 4
        assert all(p.sink == Literal("Male") for p in paths)

    def test_lookup_by_containment(self, tiny_index):
        paths = tiny_index.paths_containing(
            URI("http://example.org/govtrack/B1432"))
        assert len(paths) == 3  # p1, p9, p10

    def test_containment_covers_edge_labels(self, tiny_index):
        paths = tiny_index.paths_containing(
            URI("http://example.org/govtrack/gender"))
        assert len(paths) == 4

    def test_semantic_lookup_via_thesaurus(self, tiny_index):
        # "Man" is a synonym of "Male" in the default lexicon.
        assert tiny_index.paths_with_sink(Literal("Man"))

    def test_semantic_lookup_disabled(self, tiny_index):
        assert tiny_index.paths_with_sink(Literal("Man"),
                                          semantic=False) == []

    def test_path_at_caches(self, tiny_index):
        offset = tiny_index.all_offsets()[0]
        assert tiny_index.path_at(offset) is tiny_index.path_at(offset)

    def test_all_paths(self, tiny_index):
        assert len(tiny_index.all_paths()) == tiny_index.path_count == 14

    def test_cold_cache_forces_physical_reads(self, tiny_index):
        tiny_index.warm_up()
        tiny_index.clear_cache()
        before = tiny_index.io_stats.page_reads
        tiny_index.path_at(tiny_index.all_offsets()[0])
        assert tiny_index.io_stats.page_reads > before

    def test_warm_cache_avoids_physical_reads(self, tiny_index):
        tiny_index.clear_cache()
        tiny_index.warm_up()
        before = tiny_index.io_stats.page_reads
        for offset in tiny_index.all_offsets():
            tiny_index.path_at(offset)
        assert tiny_index.io_stats.page_reads == before


class TestPersistence:
    def test_reopen_roundtrip(self, govtrack, index_dir):
        built, _stats = build_index(govtrack, index_dir)
        original = {p.text() for p in built.all_paths()}
        built.close()

        reopened = PathIndex.open(index_dir)
        assert {p.text() for p in reopened.all_paths()} == original
        assert reopened.metadata["dataset"] == "govtrack"
        reopened.close()

    def test_reopened_lookups_work(self, govtrack, index_dir):
        built, _stats = build_index(govtrack, index_dir)
        built.close()
        reopened = PathIndex.open(index_dir)
        assert len(reopened.paths_with_sink(Literal("Health Care"))) == 10
        reopened.close()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(IndexCorruptError):
            PathIndex.open(tmp_path / "nope")

    def test_corrupt_maps_raises(self, govtrack, index_dir):
        built, _stats = build_index(govtrack, index_dir)
        built.close()
        maps_path = os.path.join(index_dir, "maps.json")
        with open(maps_path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        with pytest.raises(IndexCorruptError):
            PathIndex.open(index_dir)

    def test_version_mismatch_raises(self, govtrack, index_dir):
        built, _stats = build_index(govtrack, index_dir)
        built.close()
        maps_path = os.path.join(index_dir, "maps.json")
        with open(maps_path, encoding="utf-8") as handle:
            maps = json.load(handle)
        maps["version"] = 99
        with open(maps_path, "w", encoding="utf-8") as handle:
            json.dump(maps, handle)
        with pytest.raises(IndexCorruptError):
            PathIndex.open(index_dir)

    def test_read_latency_plumbs_through(self, govtrack, index_dir):
        built, _stats = build_index(govtrack, index_dir)
        built.close()
        slow = PathIndex.open(index_dir, read_latency=0.001)
        slow.clear_cache()
        slow.path_at(slow.all_offsets()[0])
        assert slow.io_stats.read_seconds >= 0.001
        slow.close()
