"""Integration tests: full pipelines across modules and datasets."""

import pytest

from repro.baselines import BoundedMatcher, DogmaMatcher, SapperMatcher
from repro.datasets import dataset, lubm_queries
from repro.engine import EngineConfig, SamaEngine
from repro.evaluation.ground_truth import RelevanceOracle
from repro.evaluation.metrics import reciprocal_rank
from repro.rdf import ntriples
from repro.rdf.graph import DataGraph


class TestLubmEndToEnd:
    def test_first_four_queries_answer(self, lubm_engine):
        for spec in lubm_queries()[:4]:
            answers = lubm_engine.query(spec.graph, k=5)
            assert answers, spec.qid
            scores = [a.score for a in answers]
            assert scores == sorted(scores)

    def test_top_answer_binds_a_real_professor(self, lubm_engine,
                                                lubm_small):
        # Q1 asks for database full professors: the generator mints
        # them.  Faculty sit mid-graph (publications point at them), so
        # Sama's best answers carry prefix-insertion cost — quality is
        # small but non-zero by design (insertions are how τ accounts
        # for the extra context).
        answers = lubm_engine.query(lubm_queries()[0].graph, k=1)
        best = answers[0]
        binding = next(iter(best.substitution().values()))
        assert "Faculty" in binding.value
        assert best.quality <= 4.0

    def test_answers_map_onto_data(self, lubm_engine, lubm_small):
        answers = lubm_engine.query(lubm_queries()[1].graph, k=3)
        data_triples = set(lubm_small.triples())
        for answer in answers:
            for triple in answer.subgraph().triples():
                assert triple in data_triples

    def test_rr_is_one_on_lubm_subset(self, lubm_engine, lubm_small):
        oracle = RelevanceOracle(lubm_small)
        for spec in lubm_queries()[:3]:
            truth = oracle.ground_truth(spec.graph, key=spec.qid)
            if truth.is_empty:
                continue
            answers = lubm_engine.query(spec.graph, k=10)
            flags = [oracle.judge_sama_answer(truth, a) for a in answers]
            assert reciprocal_rank(flags) == 1.0, spec.qid


class TestCrossSystemAgreement:
    def test_sama_supersets_exact_matches(self, govtrack, govtrack_engine,
                                          q1):
        """Every exact embedding appears among Sama's top answers."""
        exact = DogmaMatcher(govtrack).search(q1)
        sama_signatures = [a.substitution(strict=True)
                           for a in govtrack_engine.query(q1, k=10)]
        for match in exact:
            bindings = match.bindings(q1, govtrack)
            assert any(s is not None and dict(s) == bindings
                       for s in sama_signatures)

    def test_all_four_systems_run_every_query(self, lubm_small, lubm_engine):
        systems = [SapperMatcher(lubm_small), BoundedMatcher(lubm_small),
                   DogmaMatcher(lubm_small)]
        for spec in lubm_queries()[:3]:
            assert isinstance(lubm_engine.query(spec.graph, k=3), list)
            for system in systems:
                assert isinstance(system.search(spec.graph, limit=3), list)


class TestPersistenceWorkflow:
    def test_build_close_reopen_query(self, tmp_path):
        graph = dataset("berlin").build(600, seed=11)
        directory = str(tmp_path / "berlin-idx")
        engine = SamaEngine.from_graph(graph, directory=directory)
        query = """
            PREFIX bsbm: <http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/>
            SELECT ?p ?o WHERE {
                ?o bsbm:product ?p .
                ?p bsbm:productType "Laptop" .
            }"""
        before = engine.query(query, k=3)
        engine.close()

        reopened = SamaEngine.open(directory)
        after = reopened.query(query, k=3)
        assert [a.score for a in before] == [a.score for a in after]
        assert [a.signature() for a in before] == \
            [a.signature() for a in after]
        reopened.close()


class TestNTriplesWorkflow:
    DOC = """\
<http://ex/alice> <http://ex/wrote> <http://ex/p1> .
<http://ex/p1> <http://ex/topic> "Graph Matching" .
<http://ex/bob> <http://ex/wrote> <http://ex/p2> .
<http://ex/p2> <http://ex/topic> "Query Processing" .
"""

    def test_parse_index_query(self):
        graph = DataGraph.from_triples(ntriples.parse(self.DOC))
        with SamaEngine.from_graph(graph) as engine:
            answers = engine.query("""
                PREFIX ex: <http://ex/>
                SELECT ?a WHERE {
                    ?a ex:wrote ?p .
                    ?p ex:topic "Graph Matching" .
                }""", k=2)
            assert answers[0].is_exact
            best = answers[0].substitution()
            values = {v.value for v in best.values()}
            assert "http://ex/alice" in values


class TestMatcherLevelAblation:
    def test_semantic_recall_dominates(self, lubm_small, tmp_path):
        """semantic >= lexical >= exact in candidate recall."""
        query = """
            PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
            PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
            SELECT ?x WHERE {
                ?x rdf:type ub:FullProfessor .
                ?x ub:researchInterest "Data Bases" .
            }"""
        counts = {}
        for level in ("exact", "lexical", "semantic"):
            config = EngineConfig(matcher_level=level,
                                  semantic_lookup=(level == "semantic"))
            engine = SamaEngine.from_graph(
                lubm_small, directory=str(tmp_path / level), config=config)
            answers = engine.query(query, k=10)
            counts[level] = sum(1 for a in answers if a.is_complete)
            engine.close()
        assert counts["semantic"] >= counts["lexical"] >= counts["exact"]
