"""Unit tests for χ and the intersection query graph (Fig. 2)."""

from repro.paths.extraction import query_paths
from repro.paths.intersection import IntersectionGraph, chi
from repro.paths.model import path_of
from repro.rdf.terms import Literal, Variable


class TestChi:
    def test_shared_constants(self):
        a = path_of("X", "p", "HC")
        b = path_of("Y", "q", "HC")
        assert chi(a, b) == {Literal("HC")}

    def test_shared_variables_count(self):
        a = path_of("?v3", "sponsor", "?v2", "subject", "HC")
        b = path_of("?v3", "gender", "Male")
        assert chi(a, b) == {Variable("v3")}

    def test_disjoint(self):
        assert chi(path_of("A", "p", "B"), path_of("C", "p", "D")) == frozenset()

    def test_edge_labels_not_counted(self):
        # χ is over *nodes*; a shared edge label is not an intersection.
        a = path_of("A", "shared", "B")
        b = path_of("C", "shared", "D")
        assert chi(a, b) == frozenset()

    def test_symmetric(self):
        a = path_of("A", "p", "B")
        b = path_of("B", "q", "C")
        assert chi(a, b) == chi(b, a)


class TestFig2:
    """The paper's IG: q1-q2 share {?v2, HC}; q2-q3 share {?v3}."""

    def _paths(self, q1):
        paths = query_paths(q1)
        by_text = {p.text(): p for p in paths}
        return [
            by_text["CarlaBunes-sponsor-?v1-aTo-?v2-subject-Health Care"],
            by_text["?v3-sponsor-?v2-subject-Health Care"],
            by_text["?v3-gender-Male"],
        ]

    def test_intersections(self, q1):
        paths = self._paths(q1)
        ig = IntersectionGraph(paths)
        assert ig.common(0, 1) == {Variable("v2"), Literal("Health Care")}
        assert ig.common(1, 2) == {Variable("v3")}
        assert ig.common(0, 2) == frozenset()

    def test_edges(self, q1):
        ig = IntersectionGraph(self._paths(q1))
        assert ig.edge_count() == 2
        assert ig.has_edge(0, 1)
        assert ig.has_edge(1, 2)
        assert not ig.has_edge(0, 2)

    def test_neighbors(self, q1):
        ig = IntersectionGraph(self._paths(q1))
        assert ig.neighbors(1) == {0, 2}

    def test_connected(self, q1):
        assert IntersectionGraph(self._paths(q1)).is_connected()


class TestIntersectionGraph:
    def test_symmetric_lookup(self):
        ig = IntersectionGraph([path_of("A", "p", "B"),
                                path_of("B", "q", "C")])
        assert ig.common(1, 0) == ig.common(0, 1)

    def test_disconnected(self):
        ig = IntersectionGraph([path_of("A", "p", "B"),
                                path_of("C", "q", "D")])
        assert not ig.is_connected()
        assert ig.edge_count() == 0

    def test_single_path_connected(self):
        assert IntersectionGraph([path_of("A", "p", "B")]).is_connected()

    def test_empty_connected(self):
        assert IntersectionGraph([]).is_connected()

    def test_len(self):
        assert len(IntersectionGraph([path_of("A", "p", "B")])) == 1

    def test_edges_sorted(self):
        paths = [path_of("A", "p", "Z"), path_of("B", "q", "Z"),
                 path_of("C", "r", "Z")]
        ig = IntersectionGraph(paths)
        pairs = [(i, j) for i, j, _shared in ig.edges()]
        assert pairs == sorted(pairs)
