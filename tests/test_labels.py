"""Unit tests for the label index and the semantic matcher."""

import pytest

from repro.index.labels import LabelIndex, SemanticMatcher
from repro.index.thesaurus import Thesaurus, default_thesaurus
from repro.rdf.terms import Literal, URI, Variable


class TestLabelIndex:
    @pytest.fixture
    def index(self):
        idx = LabelIndex(default_thesaurus())
        idx.add(URI("http://x#FullProfessor"), 1)
        idx.add(URI("http://x#AssistantProfessor"), 2)
        idx.add(Literal("Health Care"), 3)
        idx.add(Literal("Databases"), 4)
        return idx

    def test_exact_lookup(self, index):
        assert index.lookup_exact(URI("http://x#FullProfessor")) == {1}
        assert index.lookup_exact(Literal("nope")) == set()

    def test_token_lookup(self, index):
        assert index.lookup_token("professor") == {1, 2}
        assert index.lookup_token("PROFESSOR") == {1, 2}

    def test_lookup_prefers_exact(self, index):
        assert index.lookup(URI("http://x#FullProfessor")) == {1}

    def test_lookup_token_conjunction(self, index):
        # "full professor" matches only the FullProfessor label.
        assert index.lookup(Literal("full professor")) == {1}

    def test_lookup_semantic_fallback(self, index):
        # "teacher" is a thesaurus synonym of "professor".
        assert index.lookup(Literal("Teacher")) == {1, 2}

    def test_lookup_semantic_disabled(self, index):
        assert index.lookup(Literal("Teacher"), semantic=False) == set()

    def test_lookup_no_thesaurus(self):
        idx = LabelIndex()
        idx.add(Literal("Movie"), 1)
        assert idx.lookup(Literal("Film")) == set()

    def test_multiple_entries_per_label(self):
        idx = LabelIndex()
        idx.add(Literal("x"), 1)
        idx.add(Literal("x"), 2)
        assert idx.lookup_exact(Literal("x")) == {1, 2}

    def test_counts(self, index):
        assert index.label_count == 4
        assert index.token_count > 0

    def test_add_all(self):
        idx = LabelIndex()
        idx.add_all([Literal("a"), Literal("b")], 9)
        assert idx.lookup_exact(Literal("a")) == {9}
        assert idx.lookup_exact(Literal("b")) == {9}


class TestSemanticMatcher:
    @pytest.fixture
    def thesaurus(self):
        return default_thesaurus()

    def test_exact_level(self):
        matcher = SemanticMatcher(level="exact")
        assert matcher(Literal("x"), Literal("x"))
        assert not matcher(Literal("Movie"), Literal("Film"))

    def test_lexical_level_token_equality(self, thesaurus):
        matcher = SemanticMatcher(thesaurus, level="lexical")
        assert matcher(URI("http://x#FullProfessor"),
                       Literal("full professor"))
        assert not matcher(Literal("Movie"), Literal("Film"))

    def test_semantic_level_synonyms(self, thesaurus):
        matcher = SemanticMatcher(thesaurus, level="semantic")
        assert matcher(Literal("Movie"), Literal("Film"))
        assert matcher(Literal("Male"), Literal("Man"))
        assert not matcher(Literal("Male"), Literal("Female"))

    def test_semantic_multi_token(self, thesaurus):
        matcher = SemanticMatcher(thesaurus, level="semantic")
        # every query token must find a related data token
        assert matcher(Literal("Health Care"), Literal("healthcare care"))
        assert not matcher(Literal("Health Care"), Literal("Health Taxes"))

    def test_variables_never_match(self, thesaurus):
        matcher = SemanticMatcher(thesaurus, level="semantic")
        assert not matcher(Variable("v"), Literal("x"))

    def test_semantic_requires_thesaurus(self):
        with pytest.raises(ValueError):
            SemanticMatcher(None, level="semantic")

    def test_bad_level_rejected(self, thesaurus):
        with pytest.raises(ValueError):
            SemanticMatcher(thesaurus, level="psychic")

    def test_cache_stability(self, thesaurus):
        matcher = SemanticMatcher(thesaurus, level="semantic")
        first = matcher(Literal("Movie"), Literal("Film"))
        second = matcher(Literal("Movie"), Literal("Film"))
        assert first == second == True  # noqa: E712 — cached path

    def test_empty_labels_do_not_match(self, thesaurus):
        matcher = SemanticMatcher(thesaurus, level="semantic")
        assert not matcher(Literal(""), Literal("x"))
