"""Direct tests for the shared SPARQL/Turtle tokenizer."""

import pytest

from repro.rdf import _lexer
from repro.rdf._lexer import LexError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text) if t.kind != _lexer.EOF]


def values(text):
    return [t.value for t in tokenize(text) if t.kind != _lexer.EOF]


class TestTokens:
    def test_iri(self):
        tokens = list(tokenize("<http://x/a>"))
        assert tokens[0].kind == _lexer.IRI
        assert tokens[0].value == "http://x/a"

    def test_variable_dollar_and_question(self):
        assert values("?v $w") == ["v", "w"]
        assert kinds("?v $w") == [_lexer.VAR, _lexer.VAR]

    def test_pname(self):
        tokens = list(tokenize("ub:advisor"))
        assert tokens[0].kind == _lexer.PNAME
        assert tokens[0].value == "ub:advisor"

    def test_default_prefix_pname(self):
        tokens = list(tokenize(":local"))
        assert tokens[0].value == ":local"

    def test_string_with_escapes(self):
        tokens = list(tokenize(r'"a\"b\nc"'))
        assert tokens[0].value == 'a"b\nc'

    def test_single_quoted_string(self):
        tokens = list(tokenize("'hi'"))
        assert tokens[0].value == "hi"

    def test_langtag_vs_prefix_directive(self):
        assert kinds('"x"@en') == [_lexer.STRING, _lexer.LANGTAG]
        tokens = list(tokenize("@prefix"))
        assert tokens[0].kind == _lexer.KEYWORD
        assert tokens[0].value == "@prefix"

    def test_numbers(self):
        assert values("42 3.14 -7") == ["42", "3.14", "-7"]

    def test_number_then_dot_terminator(self):
        # "42 ." vs "42." — the trailing dot is punctuation either way.
        tokens = [t for t in tokenize("?s ?p 42 .") if t.kind != _lexer.EOF]
        assert tokens[-1].kind == _lexer.PUNCT

    def test_datatype_separator(self):
        assert _lexer.DTYPE_SEP in kinds('"5"^^<http://x/int>')

    def test_comments_skipped(self):
        assert kinds("?a # the rest is noise ?b\n?c") == [_lexer.VAR,
                                                          _lexer.VAR]

    def test_positions_tracked(self):
        tokens = list(tokenize("?a\n  ?b"))
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_keyword_trailing_dot_split(self):
        tokens = [t for t in tokenize("true.") if t.kind != _lexer.EOF]
        assert [t.kind for t in tokens] == [_lexer.KEYWORD, _lexer.PUNCT]


class TestLexErrors:
    def test_unterminated_iri(self):
        with pytest.raises(LexError):
            list(tokenize("<http://x/a"))

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            list(tokenize('"open'))

    def test_empty_variable(self):
        with pytest.raises(LexError):
            list(tokenize("? name"))

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            list(tokenize("~"))

    def test_truncated_unicode_escape(self):
        with pytest.raises(LexError):
            list(tokenize(r'"\u12"'))
