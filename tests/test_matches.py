"""Unit tests for match counting (the Fig. 8 metric)."""

import pytest

from repro.baselines import DogmaMatcher, SapperMatcher
from repro.evaluation.matches import baseline_match_count, sama_match_count


class TestSamaMatchCount:
    def test_counts_meaningful_answers(self, govtrack_engine, q1):
        count = sama_match_count(govtrack_engine, q1, "Q1")
        assert count.system == "sama"
        assert count.query_id == "Q1"
        assert count.count > 0

    def test_score_ceiling_filters(self, govtrack_engine, q1):
        generous = sama_match_count(govtrack_engine, q1, "Q1",
                                    score_ceiling=1000.0)
        strict = sama_match_count(govtrack_engine, q1, "Q1",
                                  score_ceiling=2.0)
        assert strict.count <= generous.count
        assert strict.count >= 1  # the exact answer scores 2.0

    def test_uncapped_k_bounds_output(self, govtrack_engine, q1):
        capped = sama_match_count(govtrack_engine, q1, "Q1", uncapped_k=3)
        assert capped.count <= 3

    def test_default_ceiling_is_total_miss_cost(self, govtrack_engine, q2):
        """Answers worse than 'matched nothing at all' don't count."""
        count = sama_match_count(govtrack_engine, q2, "Q2")
        assert count.count > 0


class TestBaselineMatchCount:
    def test_dogma_exact_count(self, govtrack, q1):
        count = baseline_match_count(DogmaMatcher(govtrack), q1, "Q1")
        assert count.system == "dogma"
        assert count.count == 1

    def test_limit_caps(self, govtrack, q1):
        count = baseline_match_count(SapperMatcher(govtrack), q1, "Q1",
                                     limit=2)
        assert count.count <= 2

    def test_fig8_shape_on_govtrack(self, govtrack, govtrack_engine, q2):
        """Approximate systems find matches where exact ones find none."""
        sama = sama_match_count(govtrack_engine, q2, "Q2")
        dogma = baseline_match_count(DogmaMatcher(govtrack), q2, "Q2")
        assert sama.count > dogma.count == 0
