"""Unit tests for the effectiveness metrics (§6.3)."""

import pytest

from repro.evaluation.metrics import (PrecisionRecallPoint,
                                      average_interpolated,
                                      average_precision,
                                      interpolated_precision,
                                      precision_recall_curve,
                                      reciprocal_rank, relevance_flags)


class TestReciprocalRank:
    def test_first_hit_rank_one(self):
        assert reciprocal_rank([True, False]) == 1.0

    def test_first_hit_rank_three(self):
        assert reciprocal_rank([False, False, True]) == pytest.approx(1 / 3)

    def test_no_hit_zero(self):
        assert reciprocal_rank([False, False]) == 0.0
        assert reciprocal_rank([]) == 0.0


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        points = precision_recall_curve([True, True], total_relevant=2)
        assert points == [PrecisionRecallPoint(0.5, 1.0),
                          PrecisionRecallPoint(1.0, 1.0)]

    def test_interleaved_ranking(self):
        points = precision_recall_curve([True, False, True],
                                        total_relevant=2)
        assert points[-1] == PrecisionRecallPoint(1.0, pytest.approx(2 / 3))

    def test_missing_relevant_lowers_recall(self):
        points = precision_recall_curve([True], total_relevant=4)
        assert points[0].recall == 0.25

    def test_empty_truth(self):
        assert precision_recall_curve([True], total_relevant=0) == \
            [PrecisionRecallPoint(0.0, 1.0)]

    def test_negative_truth_rejected(self):
        with pytest.raises(ValueError):
            precision_recall_curve([], total_relevant=-1)


class TestInterpolation:
    def test_eleven_levels(self):
        curve = interpolated_precision(
            precision_recall_curve([True, True], 2))
        assert len(curve) == 11
        assert [p.recall for p in curve] == [round(0.1 * i, 1)
                                             for i in range(11)]

    def test_interpolated_is_max_to_the_right(self):
        raw = [PrecisionRecallPoint(0.5, 0.4), PrecisionRecallPoint(1.0, 0.8)]
        curve = interpolated_precision(raw)
        # At recall 0.3 the max precision at recall >= 0.3 is 0.8.
        assert curve[3].precision == 0.8

    def test_zero_beyond_achieved_recall(self):
        raw = [PrecisionRecallPoint(0.5, 1.0)]
        curve = interpolated_precision(raw)
        assert curve[10].precision == 0.0  # recall 1.0 never reached

    def test_monotone_non_increasing(self):
        raw = precision_recall_curve(
            [True, False, True, False, True], total_relevant=3)
        curve = interpolated_precision(raw)
        precisions = [p.precision for p in curve]
        assert precisions == sorted(precisions, reverse=True)


class TestAverages:
    def test_average_interpolated(self):
        a = interpolated_precision([PrecisionRecallPoint(1.0, 1.0)])
        b = interpolated_precision([PrecisionRecallPoint(1.0, 0.0)])
        merged = average_interpolated([a, b])
        assert merged[0].precision == 0.5

    def test_average_interpolated_empty(self):
        merged = average_interpolated([])
        assert all(p.precision == 0.0 for p in merged)

    def test_average_precision(self):
        assert average_precision([True, True], 2) == 1.0
        assert average_precision([False, True], 1) == 0.5
        assert average_precision([False], 0) == 0.0

    def test_relevance_flags(self):
        flags = relevance_flags([1, 2, 3], lambda x: x % 2 == 1)
        assert flags == [True, False, True]
