"""Process-pool execution mode: spawn safety, columnar scoring, faults.

The tentpole contract under test: ``worker_mode="procs"`` moves each
shard's λ scoring into a long-lived worker process scoring a columnar
view of its shard, and **nothing observable changes except wall-clock**
— rankings are bit-identical to threads and serial at every shard
count, fault plans keep their exact chaos semantics, and a killed
worker degrades the query (``SHARD_FAILED`` + breaker accounting)
instead of hanging it.  Alongside ride the satellite regressions:
pickle round-trips for everything that crosses the process boundary,
the shared-executor regrowth fix, and ``SAMA_WORKERS`` /
``SAMA_WORKER_MODE`` validation.
"""

from __future__ import annotations

import os
import pickle
import random
from array import array
import signal
import time
import warnings

import pytest

from repro.engine import EngineConfig, SamaEngine
from repro.engine.clustering import _prefix_at_anchor
from repro.index import build_index, build_sharded_index
from repro.index.columnar import (ColumnarView, EncodedQuery, encode_query,
                                  make_id_matcher, score_pairs)
from repro.index.labels import SemanticMatcher
from repro.index.thesaurus import default_thesaurus
from repro.parallel import ShardTask, worker_count, worker_mode
from repro.paths.alignment import align, exact_match
from repro.paths.model import Path
from repro.rdf.terms import BlankNode, Literal, URI, Variable
from repro.resilience import FaultPlan, install
from repro.resilience.budget import DegradationCause
from repro.resilience.health import OPEN
from repro.scoring.weights import PAPER_WEIGHTS

SHARDS = 3


def ranking(result) -> list:
    return [(round(answer.score, 9), str(answer)) for answer in result]


def shard_failed_reasons(result):
    return [reason for reason in result.reasons
            if reason.cause is DegradationCause.SHARD_FAILED]


def wait_for(predicate, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def open_engine(directory, **overrides) -> SamaEngine:
    """Scatter engages on the tiny GovTrack graph (threshold 2)."""
    overrides.setdefault("workers", 4)
    config = EngineConfig(scatter_threshold=2, **overrides)
    return SamaEngine.open(directory, config=config)


# -- pickle round-trips (everything that crosses the spawn boundary) -----------


class TestSpawnEnvelope:

    TERMS = [
        URI("http://example.org/gov/CarlaBunes"),
        BlankNode("b7"),
        Variable("?v1"),
        Literal("Health Care"),
        Literal("Gesundheit", language="de"),
        Literal("5", datatype=URI("http://www.w3.org/2001/XMLSchema#int")),
    ]

    @pytest.mark.parametrize("term", TERMS, ids=lambda t: type(t).__name__
                             + "-" + t.value[:12])
    def test_term_roundtrip(self, term):
        clone = pickle.loads(pickle.dumps(term))
        assert clone == term
        assert type(clone) is type(term)

    def test_path_roundtrip(self):
        path = Path.from_terms(
            (URI("http://x/a"), Variable("v"), Literal("leaf")),
            (URI("http://x/p"), URI("http://x/q")),
            (3, 1, 4))
        clone = pickle.loads(pickle.dumps(path))
        assert clone == path
        assert clone.node_ids == path.node_ids
        # Interner-specific id caches are deliberately not shipped.
        assert clone.label_ids is None

    def test_task_envelope_roundtrip(self):
        task = ShardTask(
            task_id=17,
            gids=array("q", [5, 9]),
            offsets=array("q", [120, 384]),
            query_path=Path.from_terms(
                (Variable("v"), URI("http://x/sink")),
                (URI("http://x/edge"),), None),
            anchor=URI("http://x/anchor"),
            weights=PAPER_WEIGHTS,
            remaining_ms=87.5)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.task_id == task.task_id
        assert list(clone.pairs) == [(5, 120), (9, 384)]
        assert clone.query_path == task.query_path
        assert clone.anchor == task.anchor
        assert clone.weights == task.weights
        assert clone.remaining_ms == task.remaining_ms

    def test_thesaurus_roundtrip(self):
        thesaurus = default_thesaurus()
        clone = pickle.loads(pickle.dumps(thesaurus))
        assert clone.synonyms("male") == thesaurus.synonyms("male")


# -- columnar scoring: bit-equality against align() ----------------------------


@pytest.fixture(scope="module")
def flat_index(tmp_path_factory, govtrack):
    directory = str(tmp_path_factory.mktemp("columnar-index"))
    index, _stats = build_index(govtrack, directory,
                                thesaurus=default_thesaurus())
    yield index
    index.close()


@pytest.fixture(scope="module")
def view(flat_index):
    return ColumnarView.build(flat_index)


def reference_rows(index, offsets, query_path, matcher, anchor=None):
    """What the in-process shard task computes: trim, align, weighted λ."""
    weights = PAPER_WEIGHTS
    rows = []
    for offset in offsets:
        path = index.path_at(offset)
        if anchor is not None:
            path = _prefix_at_anchor(path, anchor, matcher)
            if path is None:
                continue
        counts = align(path, query_path, matcher, transcript=False).counts
        score = (weights.node_mismatch * counts.node_mismatches
                 + weights.node_insertion * counts.node_insertions
                 + weights.edge_mismatch * counts.edge_mismatches
                 + weights.edge_insertion * counts.edge_insertions
                 + weights.node_deletion * counts.node_deletions
                 + weights.edge_deletion * counts.edge_deletions)
        rows.append((score, offset, path.length))
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


def query_variants(index, offsets, seed: int = 7, count: int = 24):
    """Deterministic query paths derived from stored ones: variables
    substituted (including a repeated variable, to exercise binding
    conflicts), prefixes shortened, paths crossed with one another."""
    rng = random.Random(seed)
    stored = [index.path_at(offset) for offset in offsets]
    variants = []
    for _ in range(count):
        base = rng.choice(stored)
        nodes = list(base.nodes)
        edges = list(base.edges)
        shared = Variable("x")      # may bind twice -> conflict path
        for position in range(len(nodes)):
            roll = rng.random()
            if roll < 0.25:
                nodes[position] = shared
            elif roll < 0.4:
                nodes[position] = Variable(f"n{position}")
            elif roll < 0.5:
                donor = rng.choice(stored)
                nodes[position] = donor.nodes[rng.randrange(donor.length)]
        for position in range(len(edges)):
            roll = rng.random()
            if roll < 0.2:
                edges[position] = shared
            elif roll < 0.3:
                donor = rng.choice(stored)
                if donor.edges:
                    edges[position] = donor.edges[
                        rng.randrange(len(donor.edges))]
        if len(nodes) > 2 and rng.random() < 0.3:
            cut = rng.randrange(2, len(nodes))
            nodes, edges = nodes[:cut], edges[:cut - 1]
        variants.append(Path.from_terms(tuple(nodes), tuple(edges), None))
    return variants


class TestColumnarScoring:

    @pytest.mark.parametrize("level", ["exact", "semantic"])
    def test_scores_bit_equal_to_align(self, flat_index, view, level):
        matcher = (exact_match if level == "exact"
                   else SemanticMatcher(default_thesaurus(), level=level))
        ids_match = make_id_matcher(flat_index.interner, matcher)
        offsets = flat_index.all_offsets()
        pairs = [(offset, offset) for offset in offsets]
        for query_path in query_variants(flat_index, offsets):
            expected = reference_rows(flat_index, offsets, query_path,
                                      matcher)
            query = encode_query(query_path, flat_index.interner)
            got, tripped = score_pairs(view, pairs, query, PAPER_WEIGHTS,
                                       ids_match)
            assert not tripped
            assert got == expected, f"diverged on {query_path}"

    def test_trimmed_scores_bit_equal(self, flat_index, view):
        matcher = SemanticMatcher(default_thesaurus(), level="semantic")
        ids_match = make_id_matcher(flat_index.interner, matcher)
        offsets = flat_index.all_offsets()
        pairs = [(offset, offset) for offset in offsets]
        # Anchors drawn from mid-path data nodes: some candidates trim,
        # some drop entirely — both outcomes must agree with
        # _prefix_at_anchor.
        anchors = []
        for offset in offsets:
            path = flat_index.path_at(offset)
            if path.length >= 3:
                anchors.append(path.nodes[path.length - 2])
            if len(anchors) == 5:
                break
        assert anchors, "need at least one mid-path anchor"
        trimmed_any = False
        for anchor in anchors:
            for query_path in query_variants(flat_index, offsets, seed=11,
                                             count=6):
                expected = reference_rows(flat_index, offsets, query_path,
                                          matcher, anchor=anchor)
                query = encode_query(query_path, flat_index.interner,
                                     anchor=anchor)
                got, _tripped = score_pairs(view, pairs, query,
                                            PAPER_WEIGHTS, ids_match)
                assert got == expected
                if len(got) != len(pairs):
                    trimmed_any = True
        assert trimmed_any, "anchors never dropped a candidate"

    def test_deadline_trips_mid_scan(self, flat_index, view):
        ids_match = make_id_matcher(flat_index.interner, exact_match)
        offsets = flat_index.all_offsets()
        # Repeat pairs past the check stride so the 0 ms slice trips.
        pairs = [(offset, offset) for offset in offsets] * 40
        assert len(pairs) > 64
        query_path = flat_index.path_at(offsets[0])
        query = encode_query(query_path, flat_index.interner)
        got, tripped = score_pairs(view, pairs, query, PAPER_WEIGHTS,
                                   ids_match, remaining_ms=0.0)
        assert tripped
        assert len(got) < len(pairs)


# -- satellite: shared_executor regrowth + SAMA_WORKERS validation ------------


class TestSharedExecutor:

    def test_regrow_keeps_old_pool_usable(self, monkeypatch):
        import repro.parallel as parallel
        monkeypatch.setattr(parallel, "_executor", None)
        monkeypatch.setattr(parallel, "_executor_workers", 0)
        monkeypatch.setattr(parallel, "_retired_executors", [])
        small = parallel.shared_executor(2)
        big = parallel.shared_executor(4)
        assert big is not small
        # A caller that grabbed the pool before the regrow is mid-query:
        # its follow-up submits must not hit a shut-down executor.
        assert small.submit(lambda: 21 * 2).result(timeout=10) == 42
        assert small in parallel._retired_executors
        small.shutdown(wait=False)
        big.shutdown(wait=False)

    def test_same_size_reuses_pool(self, monkeypatch):
        import repro.parallel as parallel
        monkeypatch.setattr(parallel, "_executor", None)
        monkeypatch.setattr(parallel, "_executor_workers", 0)
        monkeypatch.setattr(parallel, "_retired_executors", [])
        first = parallel.shared_executor(3)
        assert parallel.shared_executor(3) is first
        assert parallel.shared_executor(2) is first   # shrink: no churn
        assert not parallel._retired_executors
        first.shutdown(wait=False)

    def test_invalid_sama_workers_warns_once(self, monkeypatch):
        import repro.parallel as parallel
        monkeypatch.setenv("SAMA_WORKERS", "four")
        monkeypatch.setattr(parallel, "_warned_worker_values", set())
        with pytest.warns(RuntimeWarning, match="four"):
            assert worker_count() == (os.cpu_count() or 1)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            worker_count()     # second call with the same value: silent

    def test_explicit_workers_beat_environment(self, monkeypatch):
        monkeypatch.setenv("SAMA_WORKERS", "8")
        assert worker_count(2) == 2
        monkeypatch.delenv("SAMA_WORKERS")
        assert worker_count(3) == 3


class TestWorkerMode:

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("SAMA_WORKER_MODE", "procs")
        assert worker_mode("threads") == "threads"

    def test_environment_default(self, monkeypatch):
        monkeypatch.delenv("SAMA_WORKER_MODE", raising=False)
        assert worker_mode() == "threads"
        monkeypatch.setenv("SAMA_WORKER_MODE", "procs")
        assert worker_mode() == "procs"

    def test_invalid_explicit_raises(self):
        with pytest.raises(ValueError, match="worker_mode"):
            worker_mode("fibers")

    def test_invalid_environment_warns_and_falls_back(self, monkeypatch):
        import repro.parallel as parallel
        monkeypatch.setenv("SAMA_WORKER_MODE", "fibers")
        monkeypatch.setattr(parallel, "_warned_mode_values", set())
        with pytest.warns(RuntimeWarning, match="fibers"):
            assert worker_mode() == "threads"


# -- procs mode end to end: equivalence, kills, fault plans -------------------


@pytest.fixture(scope="module")
def procs_dir(tmp_path_factory, govtrack):
    directory = str(tmp_path_factory.mktemp("procs-index"))
    index, _report = build_sharded_index(govtrack, directory, SHARDS,
                                         thesaurus=default_thesaurus())
    index.close()
    return directory


class TestProcsMode:

    def test_rankings_identical_across_modes(self, procs_dir, q1):
        with open_engine(procs_dir, workers=1) as engine:
            serial = ranking(engine.query(q1, k=10))
        with open_engine(procs_dir, worker_mode="threads") as engine:
            threads = ranking(engine.query(q1, k=10))
        with open_engine(procs_dir, worker_mode="procs") as engine:
            procs = ranking(engine.query(q1, k=10))
            # Same engine again: workers are reused, not respawned.
            pool = engine.shard_pool()
            again = ranking(engine.query(q1, k=10))
            assert pool.restarts == 0
        assert serial == threads == procs == again

    def test_sigkilled_worker_degrades_then_heals(self, procs_dir, q1):
        with open_engine(procs_dir, worker_mode="procs") as engine:
            baseline = ranking(engine.query(q1, k=10))
            pool = engine.shard_pool()
            pids = pool.worker_pids()
            assert pids, "no shard workers were spawned"
            victim = sorted(pids)[0]
            os.kill(pids[victim], signal.SIGKILL)
            assert wait_for(
                lambda: pool.worker_pids().get(victim) != pids[victim])
            # The next query degrades — never hangs — naming the shard.
            degraded = engine.query(q1, k=10)
            failed = shard_failed_reasons(degraded)
            assert failed, "SIGKILLed worker did not surface as SHARD_FAILED"
            assert str(victim) in failed[0].detail
            assert pool.restarts >= 1
            # The respawned worker serves the query after that, and the
            # healed ranking is bit-identical to the baseline.
            healed = engine.query(q1, k=10)
            assert not shard_failed_reasons(healed)
            assert ranking(healed) == baseline

    def test_repeated_kills_trip_the_breaker(self, procs_dir, q1):
        with open_engine(procs_dir, worker_mode="procs") as engine:
            engine.query(q1, k=10)
            pool = engine.shard_pool()
            health = engine.index.health
            victim = sorted(pool.worker_pids())[0]
            threshold = health.config.failure_threshold
            for _ in range(threshold):
                assert wait_for(lambda: victim in pool.worker_pids())
                pid = pool.worker_pids()[victim]
                os.kill(pid, signal.SIGKILL)
                assert wait_for(
                    lambda: pool.worker_pids().get(victim) != pid)
                result = engine.query(q1, k=10)
                assert shard_failed_reasons(result)
            assert health.state(victim) == OPEN
            assert pool.restarts >= threshold

    def test_fault_plan_semantics_match_threads_mode(self, procs_dir, q1):
        plan = FaultPlan(fail_shards=(1,), seed=7)
        with open_engine(procs_dir, worker_mode="threads") as engine:
            install(engine, plan)
            expected = engine.query(q1, k=10)
        with open_engine(procs_dir, worker_mode="procs") as engine:
            install(engine, plan)
            got = engine.query(q1, k=10)
            assert shard_failed_reasons(got)
        assert ranking(got) == ranking(expected)

    def test_environment_selects_procs(self, procs_dir, q1, monkeypatch):
        monkeypatch.setenv("SAMA_WORKER_MODE", "procs")
        with open_engine(procs_dir) as engine:
            engine.query(q1, k=5)
            assert engine.shard_pool() is not None

    def test_close_stops_every_worker(self, procs_dir, q1):
        engine = open_engine(procs_dir, worker_mode="procs")
        engine.query(q1, k=10)
        pids = engine.shard_pool().worker_pids()
        assert pids
        engine.close()

        def all_gone():
            for pid in pids.values():
                try:
                    os.kill(pid, 0)
                    return False
                except ProcessLookupError:
                    continue
            return True

        assert wait_for(all_gone)
