"""Unit tests for the N-Triples parser/serializer."""

import pytest

from repro.rdf import ntriples
from repro.rdf.ntriples import NTriplesError, parse, parse_line, parse_term
from repro.rdf.terms import BlankNode, Literal, URI
from repro.rdf.triples import Triple


class TestParseLine:
    def test_simple_triple(self):
        t = parse_line("<http://x/a> <http://x/p> <http://x/b> .")
        assert t == Triple(URI("http://x/a"), URI("http://x/p"),
                           URI("http://x/b"))

    def test_literal_object(self):
        t = parse_line('<http://x/a> <http://x/p> "Health Care" .')
        assert t.object == Literal("Health Care")

    def test_language_tagged(self):
        t = parse_line('<http://x/a> <http://x/p> "chat"@fr .')
        assert t.object == Literal("chat", language="fr")

    def test_datatyped(self):
        t = parse_line('<http://x/a> <http://x/p> '
                       '"5"^^<http://www.w3.org/2001/XMLSchema#integer> .')
        assert t.object.datatype.value.endswith("integer")

    def test_blank_nodes(self):
        t = parse_line("_:s <http://x/p> _:o .")
        assert t.subject == BlankNode("s")
        assert t.object == BlankNode("o")

    def test_string_escapes(self):
        t = parse_line(r'<http://x/a> <http://x/p> "tab\there\nline" .')
        assert t.object.value == "tab\there\nline"

    def test_unicode_escape(self):
        t = parse_line(r'<http://x/a> <http://x/p> "é" .')
        assert t.object.value == "é"

    def test_long_unicode_escape(self):
        t = parse_line(r'<http://x/a> <http://x/p> "\U0001F600" .')
        assert t.object.value == "\U0001F600"

    def test_comment_and_blank_lines_skipped(self):
        assert parse_line("# a comment") is None
        assert parse_line("   ") is None

    def test_trailing_comment_allowed(self):
        t = parse_line("<http://x/a> <http://x/p> <http://x/b> . # note")
        assert t is not None

    @pytest.mark.parametrize("bad", [
        "<http://x/a> <http://x/p> <http://x/b>",         # missing dot
        '"literal" <http://x/p> <http://x/b> .',          # literal subject
        "<http://x/a> _:b <http://x/o> .",                # blank predicate
        '<http://x/a> <http://x/p> "open .',              # unterminated string
        "<http://x/a> <http://x/p .",                     # unterminated IRI
        "<http://x/a> <http://x/p> <http://x/b> . junk",  # trailing content
        r'<http://x/a> <http://x/p> "\q" .',              # unknown escape
    ])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(NTriplesError):
            parse_line(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesError) as info:
            parse_line("garbage", lineno=42)
        assert info.value.lineno == 42

    def test_iri_illegal_character(self):
        with pytest.raises(NTriplesError):
            parse_line("<http://x/a b> <http://x/p> <http://x/c> .")


class TestDocuments:
    DOC = """\
# two triples
<http://x/a> <http://x/p> <http://x/b> .

<http://x/b> <http://x/p> "done" .
"""

    def test_parse_document(self):
        triples = list(parse(self.DOC))
        assert len(triples) == 2

    def test_roundtrip(self):
        triples = list(parse(self.DOC))
        again = list(parse(ntriples.serialize(triples)))
        assert triples == again

    def test_file_roundtrip(self, tmp_path):
        triples = list(parse(self.DOC))
        path = tmp_path / "data.nt"
        written = ntriples.write_file(triples, path)
        assert written == 2
        assert list(ntriples.parse_file(path)) == triples


class TestParseTerm:
    @pytest.mark.parametrize("text, expected", [
        ("<http://x/a>", URI("http://x/a")),
        ('"plain"', Literal("plain")),
        ('"v"@en', Literal("v", language="en")),
        ("_:b7", BlankNode("b7")),
    ])
    def test_forms(self, text, expected):
        assert parse_term(text) == expected

    def test_variable_form(self):
        from repro.rdf.terms import Variable
        assert parse_term("?v2") == Variable("v2")

    def test_n3_inverse(self):
        for term in (URI("http://x/a"), Literal("x y"),
                     Literal("v", language="en"), BlankNode("b")):
            assert parse_term(term.n3()) == term

    def test_garbage_raises(self):
        with pytest.raises(NTriplesError):
            parse_term("not a term")

    def test_trailing_content_raises(self):
        with pytest.raises(NTriplesError):
            parse_term("<http://x/a> extra")
