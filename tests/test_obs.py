"""The observability layer: registry, spans, slow-query log, /metrics.

Covers the `repro.obs` subsystem in isolation (instrument semantics,
Prometheus rendering, the ``SAMA_OBS=off`` null mode) and its edges
(the HTTP ``/metrics`` endpoint, ``/stats`` merge, ``sama profile``).
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request

import pytest

from repro import cli
from repro.obs import (DEFAULT_LATENCY_BUCKETS, MetricsRegistry,
                       NullRegistry, Sample, SlowQueryLog, configure,
                       enabled, get_registry, parse_prometheus, span,
                       start_trace)
from repro.serving import ServingConfig, ServingEngine, serve

QUERY = ('PREFIX gov: <http://example.org/govtrack/> '
         'SELECT ?v WHERE { ?v gov:gender "Male" . }')


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_instruments_are_memoised_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", labels={"kind": "a"})
        again = registry.counter("hits_total", labels={"kind": "a"})
        other = registry.counter("hits_total", labels={"kind": "b"})
        assert a is again and a is not other

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x_total", labels={"stage": "s"})

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total", labels={"bad-label": "x"})

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        cumulative, total, count = hist.snapshot()
        assert cumulative == [1, 3, 4]          # <=0.1, <=1.0, +Inf
        assert count == 4 and total == pytest.approx(6.05)

    def test_histogram_boundary_is_inclusive(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(1.0)
        cumulative, _total, _count = hist.snapshot()
        assert cumulative == [1, 1], "le is <=, so 1.0 lands in le=1.0"

    def test_counter_is_thread_safe(self):
        counter = MetricsRegistry().counter("c_total")
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(10_000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000


class TestRendering:
    def test_render_parses_and_has_one_header_per_family(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests").inc(7)
        for stage in ("prepare", "cluster"):
            registry.histogram("stage_seconds", "per stage",
                               labels={"stage": stage}).observe(0.01)
        text = registry.render()
        samples = parse_prometheus(text)
        assert samples["req_total"] == 7
        assert samples['stage_seconds_count{stage="cluster"}'] == 1
        assert text.count("# TYPE stage_seconds histogram") == 1
        inf_lines = [line for line in text.splitlines()
                     if 'le="+Inf"' in line]
        assert len(inf_lines) == 2

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("e_total", labels={"q": 'a"b\\c'}).inc()
        parse_prometheus(registry.render())

    def test_collectors_feed_the_scrape(self):
        registry = MetricsRegistry()

        def collect():
            yield Sample("pool_hits_total", "counter", "pool hits", 3)

        registry.register_collector(collect)
        assert parse_prometheus(registry.render())["pool_hits_total"] == 3
        assert registry.snapshot()["pool_hits_total"] == 3
        registry.unregister_collector(collect)
        assert "pool_hits_total" not in registry.snapshot()

    def test_duplicate_collector_samples_are_summed(self):
        registry = MetricsRegistry()
        for _ in range(2):
            registry.register_collector(lambda: [
                Sample("dup_total", "counter", "", 5)])
        assert parse_prometheus(registry.render())["dup_total"] == 10

    def test_dead_owner_prunes_its_collector(self):
        registry = MetricsRegistry()

        class Owner:
            pass

        owner = Owner()
        registry.register_collector(
            lambda: [Sample("owned_total", "counter", "", 1)], owner=owner)
        assert "owned_total" in registry.snapshot()
        del owner
        import gc
        gc.collect()
        assert "owned_total" not in registry.snapshot()

    def test_parser_rejects_garbage(self):
        for bad in ("name 1 2 3 4", "{} 1", "name{a=b} 1", "name one"):
            with pytest.raises(ValueError):
                parse_prometheus(bad)


class TestTraceAndSpans:
    def test_spans_record_into_the_active_trace(self):
        with start_trace() as trace:
            with span("outer"):
                with span("inner"):
                    pass
            with span("outer"):
                pass
        names = [(r.name, r.depth) for r in trace.records]
        assert ("inner", 1) in names and ("outer", 0) in names
        breakdown = dict((name, calls)
                         for name, calls, _s in trace.breakdown())
        assert breakdown == {"inner": 1, "outer": 2}
        assert set(trace.stage_ms()) == {"inner", "outer"}

    def test_total_seconds_counts_only_top_level(self):
        with start_trace() as trace:
            with span("outer"):
                with span("inner"):
                    pass
        outer = next(s for n, _c, s in trace.breakdown() if n == "outer")
        assert trace.total_seconds == pytest.approx(outer)

    def test_spans_observe_the_stage_histogram(self):
        previous = configure(enabled=True, registry=MetricsRegistry())
        try:
            with span("teststage"):
                pass
            flat = get_registry().snapshot()
            assert flat['sama_stage_seconds_count{stage="teststage"}'] == 1
        finally:
            configure(enabled=previous[0], registry=previous[1])

    def test_disabled_obs_keeps_traces_but_not_metrics(self):
        previous = configure(enabled=False)
        try:
            assert not enabled()
            assert isinstance(get_registry(), NullRegistry)
            with start_trace() as trace:
                with span("dark"):
                    pass
            assert [r.name for r in trace.records] == ["dark"]
            assert get_registry().snapshot() == {}
            parse_prometheus(get_registry().render())
        finally:
            configure(enabled=previous[0], registry=previous[1])

    def test_null_registry_instruments_are_inert(self):
        registry = NullRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(3)
        registry.histogram("c").observe(1)
        assert registry.snapshot() == {}


class TestSlowQueryLog:
    def test_only_requests_over_threshold_are_logged(self):
        buffer = io.StringIO()
        log = SlowQueryLog(100.0, stream=buffer)
        assert log.note(latency_ms=50.0, query="fast") is False
        assert log.note(latency_ms=150.0, query="slow", k=5,
                        stages_ms={"cluster": 120.0}) is True
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 1 and log.logged == 1
        record = json.loads(lines[0])
        assert record["query"] == "slow"
        assert record["latency_ms"] == 150.0
        assert record["stages_ms"] == {"cluster": 120.0}
        assert "ts" in record

    def test_file_destination_appends_json_lines(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        log = SlowQueryLog(0.0, path=str(path))
        log.note(latency_ms=1.0, query="a")
        log.note(latency_ms=2.0, query="b")
        log.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["query"] for line in lines] == ["a", "b"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(-1.0)


@pytest.fixture
def server(govtrack_engine):
    serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
    http = serve(serving, port=0).serve_background()
    yield http
    http.shutdown(close_engine=False)


class TestMetricsEndpoint:
    def test_metrics_is_valid_prometheus_text(self, server):
        with urllib.request.urlopen(server.url + "/query", data=json.dumps(
                {"query": QUERY, "k": 5}).encode()) as response:
            assert response.status == 200
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        samples = parse_prometheus(text)
        assert samples["sama_serving_requests_total"] >= 1
        assert samples["sama_serving_served_total"] >= 1
        assert samples['sama_stage_seconds_count{stage="cluster"}'] >= 1
        assert samples["sama_request_seconds_count"] >= 1
        assert 'sama_buffer_pool_accesses_total{result="hit"}' in samples
        assert "sama_record_decodes_total" in samples

    def test_stats_carries_registry_scalars(self, server):
        with urllib.request.urlopen(server.url + "/stats") as response:
            stats = json.loads(response.read())
        assert "obs" in stats
        assert "sama_request_seconds_count" in stats["obs"]

    def test_slow_query_log_records_stage_breakdown(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(
            workers=1, slow_query_ms=0.0))
        buffer = io.StringIO()
        serving.slow_log = SlowQueryLog(0.0, stream=buffer)
        try:
            serving.query(QUERY, k=5)
        finally:
            serving.close(close_engine=False)
        record = json.loads(buffer.getvalue().splitlines()[0])
        assert record["cached"] is False and record["k"] == 5
        assert "cluster" in record["stages_ms"]


class TestProfileCli:
    def test_profile_prints_stage_breakdown(self, govtrack_engine, capsys):
        exit_code = cli.main(["profile", govtrack_engine.index.directory,
                              "-e", QUERY, "--repeat", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "profiled 2 run(s)" in captured
        for stage in ("prepare", "cluster", "search", "wall"):
            assert stage in captured
        assert "page reads" in captured and "records decoded" in captured

    def test_profile_requires_a_query(self, govtrack_engine, capsys):
        exit_code = cli.main(["profile", govtrack_engine.index.directory])
        assert exit_code == 2
        assert "error" in capsys.readouterr().err
