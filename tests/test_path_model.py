"""Unit tests for the path model (Definition 5)."""

import pytest

from repro.paths.model import Path, path_of
from repro.rdf.terms import Literal, URI, Variable


class TestConstruction:
    def test_path_of_interleaved(self):
        p = path_of("http://x/a", "http://x/p", "http://x/b")
        assert p.length == 2
        assert p.source == URI("http://x/a")
        assert p.sink == URI("http://x/b")

    def test_single_node_path(self):
        p = Path([URI("http://x/a")], [])
        assert p.length == 1
        assert p.source == p.sink

    def test_edge_count_validation(self):
        with pytest.raises(ValueError):
            Path([URI("http://x/a"), URI("http://x/b")], [])

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path([], [])

    def test_even_interleave_rejected(self):
        with pytest.raises(ValueError):
            path_of("http://x/a", "http://x/p")

    def test_immutable(self):
        p = path_of("http://x/a", "http://x/p", "http://x/b")
        with pytest.raises(AttributeError):
            p.nodes = ()

    def test_node_ids_preserved(self):
        p = path_of("http://x/a", "http://x/p", "http://x/b",
                    node_ids=[3, 9])
        assert p.node_ids == (3, 9)


class TestPaperVocabulary:
    @pytest.fixture
    def pz(self):
        # The paper's example: JR-sponsor-A1589-aTo-B0532-subject-HC.
        return path_of("http://x/JR", "http://x/sponsor", "http://x/A1589",
                       "http://x/aTo", "http://x/B0532",
                       "http://x/subject", "Health Care")

    def test_length_counts_nodes(self, pz):
        assert pz.length == 4  # "pz has length 4" (§3.2)

    def test_position_zero_based(self, pz):
        # A1589 is at (1-based) position 2 in the paper; 0-based 1... the
        # paper counts from 0: "the node A1589 has position 2"?  The
        # paper's positions are ambiguous; ours are explicit 0-based.
        assert pz.position_of("http://x/A1589") == 1

    def test_position_missing_label(self, pz):
        with pytest.raises(ValueError):
            pz.position_of("http://x/nothere")

    def test_text_notation(self, pz):
        assert pz.text() == "JR-sponsor-A1589-aTo-B0532-subject-Health Care"


class TestStructure:
    @pytest.fixture
    def abc(self):
        return path_of("http://x/a", "http://x/p", "http://x/b",
                       "http://x/q", "http://x/c")

    def test_elements_interleave(self, abc):
        kinds = [kind for kind, _ in abc.elements()]
        assert kinds == ["node", "edge", "node", "edge", "node"]

    def test_pairs_forward(self, abc):
        pairs = list(abc.pairs())
        assert pairs == [(URI("http://x/p"), URI("http://x/b")),
                         (URI("http://x/q"), URI("http://x/c"))]

    def test_reversed_pairs(self, abc):
        pairs = list(abc.reversed_pairs())
        assert pairs[0] == (URI("http://x/q"), URI("http://x/b"))
        assert pairs[1] == (URI("http://x/p"), URI("http://x/a"))

    def test_triples(self, abc):
        assert list(abc.triples()) == [
            (URI("http://x/a"), URI("http://x/p"), URI("http://x/b")),
            (URI("http://x/b"), URI("http://x/q"), URI("http://x/c")),
        ]

    def test_node_label_set_memoised(self, abc):
        assert abc.node_label_set() is abc.node_label_set()

    def test_prefix(self, abc):
        pre = abc.prefix(2)
        assert pre.length == 2
        assert pre.sink == URI("http://x/b")

    def test_prefix_bounds(self, abc):
        with pytest.raises(ValueError):
            abc.prefix(0)
        with pytest.raises(ValueError):
            abc.prefix(4)

    def test_prefix_keeps_node_ids(self):
        p = path_of("http://x/a", "http://x/p", "http://x/b",
                    node_ids=[5, 6])
        assert p.prefix(1).node_ids == (5,)


class TestVariablesAndEquality:
    def test_variables_collected(self):
        p = path_of("?s", "http://x/p", "?o")
        assert p.variables() == {Variable("s"), Variable("o")}

    def test_variable_edge_collected(self):
        p = path_of("http://x/a", "?rel", "http://x/b")
        assert Variable("rel") in p.variables()

    def test_is_ground(self):
        assert path_of("http://x/a", "http://x/p", "Male").is_ground
        assert not path_of("?v", "http://x/p", "Male").is_ground

    def test_equality_ignores_node_ids(self):
        a = path_of("http://x/a", "http://x/p", "http://x/b", node_ids=[0, 1])
        b = path_of("http://x/a", "http://x/p", "http://x/b", node_ids=[7, 8])
        assert a == b
        assert hash(a) == hash(b)

    def test_literal_nodes_allowed(self):
        p = path_of("http://x/a", "http://x/gender", "Male")
        assert p.sink == Literal("Male")
