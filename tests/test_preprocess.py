"""Unit tests for query preprocessing (§5 step 1)."""

import pytest

from repro.engine.preprocess import (EmptyQueryError, first_constant_from_sink,
                                     prepare_query)
from repro.paths.model import path_of
from repro.rdf.graph import QueryGraph
from repro.rdf.terms import Literal, URI, Variable


class TestPreparedQuery:
    def test_q1_structure(self, q1):
        prepared = prepare_query(q1)
        assert prepared.path_count == 3
        assert prepared.node_count == 6
        assert prepared.variable_count == 3
        assert prepared.ig.edge_count() == 2

    def test_depth_is_longest_path(self, q1):
        assert prepare_query(q1).depth == 4

    def test_anchor_constant_sinks(self, q1):
        prepared = prepare_query(q1)
        assert set(prepared.anchors) == {Literal("Health Care"),
                                         Literal("Male")}

    def test_empty_query_rejected(self):
        with pytest.raises(EmptyQueryError):
            prepare_query(QueryGraph())

    def test_variable_sink_falls_back(self):
        q = QueryGraph()
        q.add_triple(URI("http://x/CB"), URI("http://x/knows"), "?v")
        prepared = prepare_query(q)
        # Sink is ?v; the anchor is the edge label (first constant
        # scanning backwards).
        assert prepared.anchors == [URI("http://x/knows")]


class TestFirstConstantFromSink:
    def test_constant_sink(self):
        p = path_of("?v", "http://x/p", "Male")
        assert first_constant_from_sink(p) == Literal("Male")

    def test_variable_sink_constant_node_earlier(self):
        p = path_of("http://x/CB", "http://x/p", "?v")
        # Scanning back: ?v (var), edge p (constant) -> the edge wins
        # before reaching CB.
        assert first_constant_from_sink(p) == URI("http://x/p")

    def test_variable_sink_variable_edge(self):
        p = path_of("http://x/CB", "?e", "?v")
        assert first_constant_from_sink(p) == URI("http://x/CB")

    def test_fully_variable(self):
        p = path_of("?a", "?e", "?b")
        assert first_constant_from_sink(p) is None

    def test_backward_order_prefers_nearest_to_sink(self):
        p = path_of("http://x/far", "http://x/e1", "?m",
                    "http://x/e2", "?v")
        assert first_constant_from_sink(p) == URI("http://x/e2")
