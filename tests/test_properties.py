"""Property-based tests (hypothesis) over the core invariants.

These cover the claims the paper leans on: λ is non-negative and zero
exactly on pure substitutions; the DP alignment never costs more than
the greedy scan; score is coherent with relevance on alignment-derived
transformations; extraction output always consists of genuine
source-to-sink label sequences of the input graph.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths.alignment import align, align_optimal
from repro.paths.extraction import extract_paths
from repro.paths.intersection import chi
from repro.paths.model import Path
from repro.rdf.graph import DataGraph
from repro.rdf.terms import URI, Variable
from repro.scoring.quality import lambda_cost
from repro.scoring.relevance import Transformation, gamma
from repro.scoring.weights import PAPER_WEIGHTS

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=4)


@st.composite
def ground_paths(draw, max_len=6):
    """A ground (variable-free) path with a small label alphabet."""
    length = draw(st.integers(min_value=1, max_value=max_len))
    nodes = [URI("http://x/" + draw(_names)) for _ in range(length)]
    edges = [URI("http://x/e" + draw(_names)) for _ in range(length - 1)]
    return Path(nodes, edges)


@st.composite
def query_paths_st(draw, max_len=6):
    """A query path mixing constants and variables."""
    length = draw(st.integers(min_value=1, max_value=max_len))
    nodes = []
    for index in range(length):
        if draw(st.booleans()):
            nodes.append(Variable(f"v{index}"))
        else:
            nodes.append(URI("http://x/" + draw(_names)))
    edges = [URI("http://x/e" + draw(_names)) for _ in range(length - 1)]
    return Path(nodes, edges)


@given(ground_paths(), query_paths_st())
@settings(max_examples=200, deadline=None)
def test_lambda_non_negative(data_path, query_path):
    assert lambda_cost(align(data_path, query_path)) >= 0.0


@given(ground_paths())
@settings(max_examples=100, deadline=None)
def test_self_alignment_is_exact(path):
    alignment = align(path, path)
    assert alignment.is_exact
    assert lambda_cost(alignment) == 0.0


@given(query_paths_st())
@settings(max_examples=100, deadline=None)
def test_substituted_query_aligns_exactly(query_path):
    """Grounding the variables of q yields a path with λ = 0 against q."""
    grounded_nodes = [URI("http://x/bound") if isinstance(n, Variable) else n
                      for n in query_path.nodes]
    data_path = Path(grounded_nodes, query_path.edges)
    alignment = align(data_path, query_path)
    # Repeated variables may force conflicting bindings; exclude those.
    variables = [n for n in query_path.nodes if isinstance(n, Variable)]
    if len(variables) == len(set(variables)):
        assert lambda_cost(alignment) == 0.0


@given(ground_paths(), query_paths_st())
@settings(max_examples=150, deadline=None)
def test_optimal_alignment_never_worse(data_path, query_path):
    greedy = lambda_cost(align(data_path, query_path))
    optimal = lambda_cost(align_optimal(data_path, query_path, PAPER_WEIGHTS))
    assert optimal <= greedy + 1e-9


@given(ground_paths())
@settings(max_examples=100, deadline=None)
def test_greedy_and_optimal_agree_on_exact_matches(path):
    """On an exact match both alignment algorithms recognise it: the
    greedy scan and the DP both report is_exact and λ = 0."""
    greedy = align(path, path)
    optimal = align_optimal(path, path, PAPER_WEIGHTS)
    assert greedy.is_exact and optimal.is_exact
    assert lambda_cost(greedy) == 0.0
    assert lambda_cost(optimal) == 0.0


@given(ground_paths(), query_paths_st())
@settings(max_examples=150, deadline=None)
def test_transcript_free_alignment_matches(data_path, query_path):
    """The hot-path mode (transcript=False) skips op recording but must
    keep identical counts, substitution, and hence λ."""
    full = align(data_path, query_path)
    bare = align(data_path, query_path, transcript=False)
    assert bare.ops == ()
    assert bare.counts == full.counts
    assert dict(bare.substitution.items()) == dict(full.substitution.items())
    assert lambda_cost(bare) == lambda_cost(full)


@given(ground_paths(), query_paths_st())
@settings(max_examples=150, deadline=None)
def test_gamma_equals_lambda(data_path, query_path):
    """Theorem 1's bridge: γ(τ(alignment)) == λ(alignment)."""
    alignment = align(data_path, query_path)
    assert gamma(Transformation.from_alignment(alignment)) == \
        lambda_cost(alignment)


@given(ground_paths(), ground_paths())
@settings(max_examples=100, deadline=None)
def test_chi_symmetric_and_bounded(path_a, path_b):
    common = chi(path_a, path_b)
    assert common == chi(path_b, path_a)
    assert len(common) <= min(path_a.length, path_b.length)
    assert common <= path_a.node_label_set()


@st.composite
def small_graphs(draw):
    node_count = draw(st.integers(min_value=1, max_value=8))
    nodes = [f"http://x/n{i}" for i in range(node_count)]
    edge_count = draw(st.integers(min_value=0, max_value=12))
    triples = []
    for _ in range(edge_count):
        src = draw(st.integers(0, node_count - 1))
        dst = draw(st.integers(0, node_count - 1))
        if src == dst:
            continue
        label = "http://x/e" + draw(_names)
        triples.append((nodes[src], label, nodes[dst]))
    graph = DataGraph()
    for name in nodes:
        graph.node_for(URI(name))
    graph.add_triples(triples)
    return graph


@given(small_graphs())
@settings(max_examples=100, deadline=None)
def test_extracted_paths_are_real_walks(graph):
    """Every extracted path is a genuine label walk of the graph and
    never repeats a node."""
    for path in extract_paths(graph):
        assert path.node_ids is not None
        assert len(set(path.node_ids)) == path.length
        for position in range(path.length - 1):
            src = path.node_ids[position]
            dst = path.node_ids[position + 1]
            assert (path.edges[position], dst) in graph.out_edges(src)
        # Roots: no incoming edges, or hub-promoted (graph cyclic).
        if graph.sources():
            assert graph.in_degree(path.node_ids[0]) == 0


@given(small_graphs())
@settings(max_examples=50, deadline=None)
def test_extraction_deterministic(graph):
    first = [p.text() for p in extract_paths(graph)]
    second = [p.text() for p in extract_paths(graph)]
    assert first == second
