"""Quotient-compressed scoring (``repro.quotient``): classes, store, engine.

The load-bearing claims, in test order:

- the equality-pattern quotient separates what λ can distinguish
  (``X knows X`` vs ``X knows Y``) and merges what it cannot (the same
  shape under renamed labels), with nodes and edges numbered in one
  shared slot namespace;
- the persisted ``quotient.bin`` round-trips exactly, and a stale
  epoch, corrupt bytes, or a missing file all degrade to exhaustive
  per-path scoring instead of wrong answers;
- **quotiented rankings are bit-identical** to unquotiented ones — on
  the GovTrack example, under anchor trims, and over sharded indexes
  across worker modes and two-stage modes (the wider matrix is gated
  by ``benchmarks/bench_quotient.py``);
- compaction invalidates quotients in place but leaves a copy-out
  source untouched; tmp debris from a crashed quotient write is swept
  at index open;
- the ``sama index`` verbs build, skip, and rebuild the files, and the
  serving stats surface reports compression.
"""

import os

import pytest

from repro.cli import main
from repro.engine.sama import EngineConfig, SamaEngine
from repro.index import build_index
from repro.index.incremental import IncrementalIndex, compact_directory
from repro.index.labels import LabelInterner
from repro.index.pathindex import PathIndex
from repro.paths.model import Path
from repro.rdf.graph import DataGraph
from repro.rdf.terms import URI
from repro.quotient import (QuotientFormatError, QuotientIndex,
                            build_quotients, invalidate_quotients,
                            load_shard_quotient, quotient_path)
from repro.quotient.store import ShardQuotient
from repro.sketch import build_sketches


def uri(name):
    return URI(f"http://x/{name}")


class _MemoryIndex:
    """The minimal surface ShardQuotient.from_index needs."""

    epoch = 0

    def __init__(self, paths):
        self.interner = LabelInterner()
        self._paths = list(paths)
        for path in self._paths:
            for node in path.nodes:
                self.interner.intern(node)
            for edge in path.edges:
                self.interner.intern(edge)

    def all_offsets(self):
        return list(range(len(self._paths)))

    def path_at(self, offset):
        return self._paths[offset]


# ---------------------------------------------------------------------------
# the quotient itself: what collapses, what stays apart


class TestPattern:
    def test_renamed_labels_share_a_class(self):
        """Student17-memberOf-Dept3 and Student42-memberOf-Dept9 have
        the same equality pattern; a path of another shape does not."""
        quotient = ShardQuotient.from_index(_MemoryIndex([
            Path([uri("s17"), uri("d3")], [uri("memberOf")]),
            Path([uri("s42"), uri("d9")], [uri("memberOf")]),
            Path([uri("s17")], []),
        ]), epoch=0)
        assert len(quotient) == 3
        assert quotient.class_count == 2
        assert quotient.class_ids[0] == quotient.class_ids[1]
        assert quotient.class_ids[2] != quotient.class_ids[0]

    def test_repeated_labels_split_classes(self):
        """``X knows X`` and ``X knows Y`` are distinguishable by a
        repeated-variable query, so they must not share a class."""
        quotient = ShardQuotient.from_index(_MemoryIndex([
            Path([uri("a"), uri("a")], [uri("knows")]),
            Path([uri("a"), uri("b")], [uri("knows")]),
        ]), epoch=0)
        assert quotient.class_count == 2

    def test_nodes_and_edges_share_one_slot_namespace(self):
        """A label recurring as node *and* edge repeats its slot — a
        query variable can bind at both positions, so the pattern must
        record the coincidence."""
        quotient = ShardQuotient.from_index(_MemoryIndex([
            Path([uri("p"), uri("q")], [uri("p")]),
            Path([uri("p"), uri("q")], [uri("r")]),
        ]), epoch=0)
        assert quotient.class_count == 2
        assert list(quotient.patterns[quotient.class_ids[0]]) == [0, 0, 1]

    def test_member_node_ids_recover_concrete_labels(self):
        index = _MemoryIndex([
            Path([uri("a"), uri("b"), uri("c")], [uri("p"), uri("q")]),
        ])
        quotient = ShardQuotient.from_index(index, epoch=0)
        intern = index.interner.intern
        want = [intern(uri("a")), intern(uri("b")), intern(uri("c"))]
        assert list(quotient.member_node_ids(0, 3)) == want
        assert list(quotient.member_node_ids(0, 2)) == want[:2]


# ---------------------------------------------------------------------------
# the store: round-trip, stale epoch, corruption, invalidation


class TestStore:
    def _quotient(self, epoch=3):
        return ShardQuotient.from_index(_MemoryIndex([
            Path([uri("a"), uri("b"), uri("c")], [uri("p"), uri("q")]),
            Path([uri("d"), uri("e"), uri("f")], [uri("p"), uri("q")]),
            Path([uri("z")], []),
        ]), epoch=epoch)

    def test_round_trip(self, tmp_path):
        quotient = self._quotient()
        target = str(tmp_path / "quotient.bin")
        quotient.save(target)
        loaded = ShardQuotient.load(target)
        assert loaded.epoch == 3
        assert loaded.offsets == quotient.offsets
        assert list(loaded.class_ids) == list(quotient.class_ids)
        assert [list(p) for p in loaded.patterns] == \
            [list(p) for p in quotient.patterns]
        assert [list(p) for p in loaded.params] == \
            [list(p) for p in quotient.params]
        assert loaded.row_of == quotient.row_of

    def test_stale_epoch_loads_as_none(self, tmp_path):
        self._quotient(epoch=3).save(str(tmp_path / "quotient.bin"))
        assert load_shard_quotient(str(tmp_path), expected_epoch=3) \
            is not None
        assert load_shard_quotient(str(tmp_path), expected_epoch=4) is None

    def test_corrupt_and_missing_load_as_none(self, tmp_path):
        assert load_shard_quotient(str(tmp_path), expected_epoch=0) is None
        target = str(tmp_path / "quotient.bin")
        with open(target, "wb") as handle:
            handle.write(b"not a quotient at all")
        assert load_shard_quotient(str(tmp_path), expected_epoch=0) is None

    def test_truncation_anywhere_raises_format_error(self, tmp_path):
        target = str(tmp_path / "quotient.bin")
        self._quotient().save(target)
        with open(target, "rb") as handle:
            blob = handle.read()
        for cut in (4, 20, len(blob) // 2, len(blob) - 1):
            with open(target, "wb") as handle:
                handle.write(blob[:cut])
            with pytest.raises(QuotientFormatError):
                ShardQuotient.load(target)
        with open(target, "wb") as handle:
            handle.write(blob + b"\x00")
        with pytest.raises(QuotientFormatError):
            ShardQuotient.load(target)

    def test_invalidate_sweeps_shard_dirs(self, tmp_path):
        os.makedirs(tmp_path / "shard-00")
        for target in (tmp_path / "quotient.bin",
                       tmp_path / "shard-00" / "quotient.bin"):
            with open(target, "wb") as handle:
                handle.write(b"x")
        assert invalidate_quotients(str(tmp_path)) == 2
        assert invalidate_quotients(str(tmp_path)) == 0

    def test_compaction_invalidates_quotients_in_place(self, tmp_path):
        graph = DataGraph.from_triples([
            ("http://x/a", "http://x/p", "http://x/b"),
            ("http://x/b", "http://x/p", "http://x/c"),
        ])
        directory = str(tmp_path / "inc")
        index = IncrementalIndex(graph, directory)
        index.remove_triple("http://x/b", "http://x/p", "http://x/c")
        index.save_manifest()
        index.close()
        with open(quotient_path(directory), "wb") as handle:
            handle.write(b"doomed")
        report = compact_directory(directory)
        assert report.quotients_invalidated == 1
        assert not os.path.exists(quotient_path(directory))

    def test_compaction_to_output_keeps_source_sidecars(self, tmp_path):
        """Copy-out compaction must not delete the still-valid sidecars
        of the source directory (regression: they were invalidated
        before the in-place check)."""
        from repro.sketch import sketch_path

        graph = DataGraph.from_triples([
            ("http://x/a", "http://x/p", "http://x/b"),
        ])
        directory = str(tmp_path / "inc")
        index = IncrementalIndex(graph, directory)
        index.save_manifest()
        index.close()
        for sidecar in (quotient_path(directory), sketch_path(directory)):
            with open(sidecar, "wb") as handle:
                handle.write(b"still valid")
        report = compact_directory(directory, output=str(tmp_path / "out"))
        assert report.quotients_invalidated == 0
        assert report.sketches_invalidated == 0
        assert os.path.exists(quotient_path(directory))
        assert os.path.exists(sketch_path(directory))
        assert not os.path.exists(quotient_path(str(tmp_path / "out")))

    def test_open_sweeps_quotient_tmp_debris(self, tmp_path, govtrack):
        """A crash between mkstemp and os.replace strands
        ``quotient.bin.*.tmp``; reopening the index sweeps it and the
        real file (if any) stays authoritative."""
        directory = str(tmp_path / "idx")
        index, _ = build_index(govtrack, directory)
        build_quotients(index)
        index.close()
        debris = os.path.join(directory, "quotient.bin.abc123.tmp")
        with open(debris, "wb") as handle:
            handle.write(b"half-written")
        reopened = PathIndex.open(directory)
        try:
            assert not os.path.exists(debris)
            assert load_shard_quotient(directory, reopened.epoch) is not None
        finally:
            reopened.close()


# ---------------------------------------------------------------------------
# bit-identity: a real engine, quotient on vs off


class TestEngine:
    QUERY = """
        PREFIX gov: <http://example.org/govtrack/>
        SELECT ?v1 ?v2 ?v3 WHERE {
            gov:CarlaBunes gov:sponsor ?v1 .
            ?v1 gov:aTo ?v2 .
            ?v2 gov:subject "Health Care" .
            ?v3 gov:sponsor ?v2 .
            ?v3 gov:gender "Male" .
        }"""

    @staticmethod
    def _ranking(engine, query, k=6):
        return [(round(answer.score, 12), str(answer))
                for answer in engine.query(query, k=k)]

    @pytest.fixture(scope="class")
    def indexed(self, tmp_path_factory):
        from repro.datasets.govtrack import govtrack_graph

        directory = str(tmp_path_factory.mktemp("quotient") / "idx")
        engine = SamaEngine.from_graph(govtrack_graph(),
                                       directory=directory)
        build_quotients(engine.index)
        engine.close()
        return directory

    @pytest.mark.parametrize("max_cluster_size", [1, 2, 3, 4000])
    def test_rankings_bit_identical(self, indexed, max_cluster_size):
        plain = SamaEngine.open(indexed, config=EngineConfig(
            quotient="off", max_cluster_size=max_cluster_size))
        quotiented = SamaEngine.open(indexed, config=EngineConfig(
            quotient="auto", max_cluster_size=max_cluster_size))
        try:
            assert quotiented.quotient_resolver() is not None
            assert (self._ranking(quotiented, self.QUERY)
                    == self._ranking(plain, self.QUERY))
        finally:
            plain.close()
            quotiented.close()

    def test_classes_actually_compress(self, indexed):
        engine = SamaEngine.open(indexed)
        try:
            quotients = QuotientIndex.for_index(engine.index)
            assert quotients is not None
            assert quotients.class_count < quotients.path_count
            assert quotients.compression_ratio > 1.0
        finally:
            engine.close()

    def test_counters_flow_to_registry(self, indexed):
        from repro.obs import get_registry

        registry = get_registry()
        before = registry.snapshot().get("sama_quotient_members_total", 0.0)
        engine = SamaEngine.open(indexed,
                                 config=EngineConfig(quotient="auto"))
        try:
            engine.query(self.QUERY, k=3)
        finally:
            engine.close()
        snapshot = registry.snapshot()
        assert snapshot.get("sama_quotient_members_total", 0.0) > before
        assert snapshot.get("sama_quotient_reps_total", 0.0) > 0
        assert snapshot.get("sama_quotient_compression_ratio", 0.0) > 1.0

    def test_stale_quotient_falls_back_to_exhaustive(self, tmp_path):
        from repro.datasets.govtrack import govtrack_graph

        directory = str(tmp_path / "idx")
        engine = SamaEngine.from_graph(govtrack_graph(),
                                       directory=directory)
        stale = ShardQuotient.from_index(engine.index, epoch=99)
        stale.save(quotient_path(directory))
        engine.close()
        reopened = SamaEngine.open(directory)
        try:
            assert reopened.quotient_resolver() is None
            assert reopened.query(self.QUERY, k=3)
        finally:
            reopened.close()

    def test_invalid_mode_rejected(self, tmp_path, govtrack):
        directory = str(tmp_path / "idx")
        SamaEngine.from_graph(govtrack, directory=directory).close()
        with pytest.raises(ValueError):
            SamaEngine.open(directory,
                            config=EngineConfig(quotient="banana"))


class TestSharded:
    """Bit-identity over sharded indexes: scatter-gather in both worker
    modes, with and without the two-stage filter in front."""

    def _workload(self):
        triples = []
        for i in range(40):
            triples.append((f"http://x/s{i}", "http://x/likes",
                            f"http://x/m{i % 7}"))
            triples.append((f"http://x/m{i % 7}", "http://x/type",
                            "http://x/Movie"))
        return DataGraph.from_triples(triples)

    QUERY = """
        SELECT ?s WHERE {
            ?s <http://x/likes> ?m .
            ?m <http://x/type> <http://x/Movie> .
        }"""

    @pytest.fixture(scope="class")
    def sharded_dir(self, tmp_path_factory):
        from repro.index.sharded import build_sharded_index

        directory = str(tmp_path_factory.mktemp("qshards") / "idx")
        index, _ = build_sharded_index(self._workload(), directory, 4)
        build_sketches(index)
        build_quotients(index)
        index.close()
        return directory

    @pytest.mark.parametrize("worker_mode,two_stage", [
        ("threads", "off"),
        ("threads", "safe"),
        ("procs", "off"),
        ("procs", "safe"),
    ])
    def test_scatter_gather_identical(self, sharded_dir, worker_mode,
                                      two_stage):
        plain = SamaEngine.open(sharded_dir, config=EngineConfig(
            quotient="off", scatter_threshold=1))
        quotiented = SamaEngine.open(sharded_dir, config=EngineConfig(
            quotient="auto", worker_mode=worker_mode, two_stage=two_stage,
            scatter_threshold=1))
        try:
            assert quotiented.quotient_resolver() is not None
            want = [(round(a.score, 12), str(a))
                    for a in plain.query(self.QUERY, k=8)]
            got = [(round(a.score, 12), str(a))
                   for a in quotiented.query(self.QUERY, k=8)]
            assert got == want
        finally:
            plain.close()
            quotiented.close()


# ---------------------------------------------------------------------------
# serving + CLI surface


class TestSurface:
    def _build(self, tmp_path, extra=()):
        data = tmp_path / "data.nt"
        data.write_text(
            "<http://x/a> <http://x/p> <http://x/b> .\n"
            "<http://x/b> <http://x/p> <http://x/c> .\n"
            "<http://x/d> <http://x/p> <http://x/e> .\n")
        directory = str(tmp_path / "idx")
        assert main(["index", "build", str(data), directory,
                     *extra]) == 0
        return directory

    def test_index_build_writes_quotients_by_default(self, tmp_path,
                                                     capsys):
        directory = self._build(tmp_path)
        assert os.path.exists(quotient_path(directory))
        assert "quotient:" in capsys.readouterr().out

    def test_no_quotient_flag_skips_the_pass(self, tmp_path):
        directory = self._build(tmp_path, extra=["--no-quotient"])
        assert not os.path.exists(quotient_path(directory))

    def test_cli_index_quotient_builds_files(self, tmp_path, capsys):
        directory = self._build(tmp_path, extra=["--no-quotient"])
        assert main(["index", "quotient", directory]) == 0
        assert os.path.exists(quotient_path(directory))
        out = capsys.readouterr().out
        assert "quotiented" in out and "compression" in out
        loaded = load_shard_quotient(directory, expected_epoch=0)
        assert loaded is not None and len(loaded) > 0

    def test_cli_query_quotient_modes_agree(self, tmp_path):
        directory = self._build(tmp_path)
        for mode in ("auto", "off"):
            assert main(["query", directory, "--quotient", mode, "-e",
                         "SELECT ?s WHERE "
                         "{ ?s <http://x/p> <http://x/b> . }"]) == 0

    def test_stats_payload_reports_compression(self, tmp_path):
        from repro.serving import ServingConfig, ServingEngine

        directory = self._build(tmp_path)
        engine = SamaEngine.open(directory)
        service = ServingEngine(engine, ServingConfig(workers=1))
        try:
            stats = service.stats_payload()
            assert stats["quotient"] is not None
            assert stats["quotient"]["classes"] >= 1
            assert stats["quotient"]["paths"] >= stats["quotient"]["classes"]
            assert stats["quotient"]["compression_ratio"] >= 1.0
        finally:
            service.close()

    def test_stats_payload_none_without_quotients(self, tmp_path):
        from repro.serving import ServingConfig, ServingEngine

        directory = self._build(tmp_path, extra=["--no-quotient"])
        engine = SamaEngine.open(directory)
        service = ServingEngine(engine, ServingConfig(workers=1))
        try:
            assert service.stats_payload()["quotient"] is None
        finally:
            service.close()
