"""Unit tests for the relevance reference model and Theorem 1 coherence."""

import pytest

from repro.paths.alignment import align
from repro.paths.model import path_of
from repro.scoring.quality import lambda_cost
from repro.scoring.relevance import (Operation, Transformation, gamma,
                                     is_more_relevant, operation_weight)
from repro.scoring.weights import PAPER_WEIGHTS, ScoringWeights


class TestOperationWeights:
    def test_theorem1_assignment(self):
        """ω maps the four priced operations onto a, b, c, d."""
        assert operation_weight(Operation.NODE_RELABELING) == 1.0
        assert operation_weight(Operation.NODE_INSERTION) == 0.5
        assert operation_weight(Operation.EDGE_RELABELING) == 2.0
        assert operation_weight(Operation.EDGE_INSERTION) == 1.0

    def test_deletions_weight_zero(self):
        assert operation_weight(Operation.NODE_DELETION) == 0.0
        assert operation_weight(Operation.EDGE_DELETION) == 0.0


class TestTransformation:
    def test_cost_is_weighted_sum(self):
        tau = Transformation.from_operations(
            [Operation.NODE_INSERTION, Operation.EDGE_INSERTION])
        assert gamma(tau) == 1.5

    def test_empty_transformation_is_exact(self):
        tau = Transformation.from_operations([])
        assert tau.is_empty
        assert gamma(tau) == 0.0

    def test_from_alignment_matches_lambda(self):
        """γ(τ from alignment) == λ(alignment) — the Theorem 1 bridge."""
        p = path_of("CB", "sponsor", "A0056", "aTo", "B1432", "subject", "HC")
        for q in (path_of("CB", "sponsor", "?v1", "aTo", "?v2", "subject", "HC"),
                  path_of("?v3", "sponsor", "?v2", "subject", "HC"),
                  path_of("?x", "other", "HC")):
            alignment = align(p, q)
            tau = Transformation.from_alignment(alignment)
            assert gamma(tau) == lambda_cost(alignment)

    def test_from_alignments_concatenates(self):
        p = path_of("A", "p", "B")
        q_cheap = path_of("?x", "p", "B")
        q_costly = path_of("?x", "z", "B")
        tau = Transformation.from_alignments(
            [align(p, q_cheap), align(p, q_costly)])
        assert gamma(tau) == 2.0  # one edge relabeling

    def test_len(self):
        tau = Transformation.from_operations([Operation.NODE_INSERTION] * 3)
        assert len(tau) == 3


class TestRelevanceOrdering:
    def test_is_more_relevant(self):
        cheap = Transformation.from_operations([Operation.NODE_INSERTION])
        costly = Transformation.from_operations([Operation.EDGE_RELABELING])
        assert is_more_relevant(cheap, costly)
        assert not is_more_relevant(costly, cheap)

    def test_theorem1_coherence_on_paths(self):
        """More relevant (cheaper τ) ⇒ lower λ, for alignment-derived τ."""
        p = path_of("CB", "sponsor", "A0056", "aTo", "B1432", "subject", "HC")
        exactish = align(p, path_of("CB", "sponsor", "?v1", "aTo", "?v2",
                                    "subject", "HC"))
        approx = align(p, path_of("?v3", "sponsor", "?v2", "subject", "HC"))
        tau_1 = Transformation.from_alignment(exactish)
        tau_2 = Transformation.from_alignment(approx)
        assert is_more_relevant(tau_1, tau_2)
        assert lambda_cost(exactish) < lambda_cost(approx)

    def test_custom_weights_flow_through(self):
        weights = ScoringWeights(node_insertion=5.0)
        tau = Transformation.from_operations([Operation.NODE_INSERTION])
        assert gamma(tau, weights) == 5.0
