"""Resilient query execution: budgets, degradation, typed errors, faults.

The central contract under test: a query under any seeded fault plan
produces either a complete result, a :class:`PartialResult` with
populated :class:`DegradationReason`\\ s, or a typed
:class:`ReproError` subclass — never a hang (the per-test timeout in
pyproject.toml enforces the "never" part) and never a bare exception.
"""

from __future__ import annotations

import pytest

from repro.cli import main as cli_main
from repro.datasets.govtrack import govtrack_graph, query_q1
from repro.engine import SamaEngine
from repro.engine.forest import PathForest
from repro.rdf.graph import QueryGraph
from repro.rdf.sparql import parse_select
from repro.resilience import (Budget, DegradationCause, DegradationReason,
                              FaultPlan, InvalidQueryError, ParseError,
                              PartialResult, QueryTimeout, ReproError)
from repro.resilience.errors import (IndexCorruptError, PageCorruptError,
                                     StorageError, TransientStorageError)
from repro.resilience.faults import install, uninstall
from repro.resilience.retry import (DEFAULT_RETRY, NO_RETRY, RetryPolicy,
                                    retry_call)
from repro.storage.bufferpool import BufferPool
from repro.storage.pagestore import PageStore

Q1_SPARQL = """
    PREFIX gov: <http://example.org/govtrack/>
    SELECT * WHERE {
        gov:CarlaBunes gov:sponsor ?v1 .
        ?v1 gov:aTo ?v2 .
        ?v2 gov:subject "Health Care" .
    }
"""


@pytest.fixture(scope="module")
def shared_index_dir(tmp_path_factory):
    """One GovTrack index on disk; fault tests open fresh engines on it."""
    directory = tmp_path_factory.mktemp("resilience-index")
    engine = SamaEngine.from_graph(govtrack_graph(), directory=str(directory))
    engine.close()
    return str(directory)


@pytest.fixture
def fresh_engine(shared_index_dir):
    """A function-scoped engine: cold cache, private injector/counters."""
    engine = SamaEngine.open(shared_index_dir)
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def reference_scores(shared_index_dir):
    """Fault-free ranking every healed/complete run must reproduce."""
    engine = SamaEngine.open(shared_index_dir)
    try:
        result = engine.query(query_q1(), k=5)
    finally:
        engine.close()
    assert result.complete and result
    return [answer.score for answer in result]


# -- the acceptance matrix: >= 20 seeded fault plans, no hangs ----------------


def _plan_for(seed: int) -> FaultPlan:
    kind = seed % 4
    if kind == 0:       # random transient read failures, persistent
        return FaultPlan(seed=seed,
                         read_failure_rate=0.05 + 0.09 * (seed % 5))
    if kind == 1:       # random page corruption, persistent
        return FaultPlan(seed=seed, corrupt_rate=0.04 + 0.07 * (seed % 5))
    if kind == 2:       # a bounded blip that the retry layer may heal
        return FaultPlan(seed=seed, fail_reads=(0, 2), corrupt_rate=0.02,
                         max_failures=1 + seed % 3)
    # kind == 3: a host clock jumping forward under a real deadline
    return FaultPlan(seed=seed, clock_skew_ms=200.0 + 100.0 * seed)


SEEDED_PLANS = [_plan_for(seed) for seed in range(24)]


@pytest.mark.parametrize("plan", SEEDED_PLANS,
                         ids=lambda plan: f"seed{plan.seed}")
def test_seeded_plan_partial_or_typed_never_hangs(plan, fresh_engine,
                                                  reference_scores):
    injector = install(fresh_engine, plan)
    budget = (Budget(deadline_ms=2_000, clock=plan.clock())
              if plan.clock_skew_ms else None)
    try:
        result = fresh_engine.query(query_q1(), k=5, budget=budget)
    except ReproError as exc:
        # Typed failure: the storage fault survived the retry budget.
        assert isinstance(exc, (StorageError, IndexCorruptError))
    else:
        assert isinstance(result, PartialResult)
        if result.degraded:
            assert result.reasons
            assert all(isinstance(reason, DegradationReason)
                       for reason in result.reasons)
        else:
            # The plan let the query through whole: ranking must match
            # the fault-free reference exactly.
            assert [answer.score for answer in result] == reference_scores
    if plan.read_failure_rate or plan.corrupt_rate or plan.fail_reads:
        assert injector.reads > 0, "storage plan never saw a read"


def test_persistent_read_failure_surfaces_typed(fresh_engine):
    install(fresh_engine, FaultPlan(seed=1, read_failure_rate=1.0))
    with pytest.raises(TransientStorageError, match="injected read failure"):
        fresh_engine.query(query_q1(), k=5)


def test_persistent_corruption_trips_checksum(fresh_engine):
    install(fresh_engine, FaultPlan(seed=2, corrupt_rate=1.0))
    with pytest.raises(PageCorruptError, match="checksum"):
        fresh_engine.query(query_q1(), k=5)


def test_transient_blip_heals_via_retry(fresh_engine, reference_scores):
    injector = install(fresh_engine,
                       FaultPlan(seed=7, fail_reads=(0,), max_failures=1))
    result = fresh_engine.query(query_q1(), k=5)
    assert result.complete
    assert [answer.score for answer in result] == reference_scores
    assert injector.failures_injected == 1


def test_uninstall_restores_service(fresh_engine, reference_scores):
    install(fresh_engine, FaultPlan(seed=3, read_failure_rate=1.0))
    with pytest.raises(StorageError):
        fresh_engine.query(query_q1(), k=5)
    uninstall(fresh_engine)
    result = fresh_engine.query(query_q1(), k=5)
    assert result.complete
    assert [answer.score for answer in result] == reference_scores


def test_fault_plan_is_deterministic():
    plan = FaultPlan(seed=11, read_failure_rate=0.3, corrupt_rate=0.3)

    def run(injector):
        outcomes = []
        for ordinal in range(50):
            try:
                outcomes.append(injector.on_read(ordinal % 7, bytes(range(16))))
            except TransientStorageError:
                outcomes.append("fail")
        return outcomes

    assert run(plan.injector()) == run(plan.injector())


def test_max_failures_disarms_injection():
    injector = FaultPlan(seed=4, read_failure_rate=1.0,
                         max_failures=2).injector()
    outcomes = []
    for ordinal in range(10):
        try:
            injector.on_read(ordinal, b"page")
            outcomes.append("ok")
        except TransientStorageError:
            outcomes.append("fail")
    assert outcomes == ["fail", "fail"] + ["ok"] * 8
    assert injector.failures_injected == 2


def test_skewed_clock_is_monotonic_and_advances():
    clock = FaultPlan(seed=5, clock_skew_ms=10.0).clock()
    readings = [clock() for _ in range(100)]
    assert readings == sorted(readings)
    # 100 draws of uniform(0, 20 ms) skew: far beyond 50 ms total.
    assert readings[-1] - readings[0] > 0.05


def test_clock_skew_trips_deadline_early(fresh_engine):
    plan = FaultPlan(seed=9, clock_skew_ms=2_000.0)
    budget = Budget(deadline_ms=50, clock=plan.clock(), check_stride=1)
    result = fresh_engine.query(query_q1(), k=5, budget=budget)
    assert result.degraded
    assert DegradationCause.DEADLINE in result.causes()


# -- budget boundary semantics -------------------------------------------------


def test_zero_deadline_yields_empty_partial_not_exception(govtrack_engine, q1):
    result = govtrack_engine.query(q1, deadline_ms=0)
    assert isinstance(result, PartialResult)
    assert list(result) == []
    assert result.degraded
    assert DegradationCause.DEADLINE in result.causes()


def test_huge_deadline_equals_unbudgeted(govtrack_engine, q1):
    full = govtrack_engine.query(q1, k=10)
    budgeted = govtrack_engine.query(q1, k=10, deadline_ms=1e9)
    assert budgeted.complete
    assert len(budgeted) == len(full)
    assert [a.score for a in budgeted] == [a.score for a in full]


def test_expansion_cap_partial_is_score_prefix_of_full(govtrack_engine, q1):
    full_scores = [a.score for a in govtrack_engine.query(q1, k=10)]
    for cap in (2, 5, 9):
        partial = govtrack_engine.query(q1, k=10,
                                        budget=Budget(max_expansions=cap))
        scores = [a.score for a in partial]
        assert scores == full_scores[:len(scores)]
        if partial.degraded:
            assert partial.causes() == {DegradationCause.EXPANSION_CAP}


def test_candidate_cap_records_cluster_truncation(govtrack_engine, q1):
    partial = govtrack_engine.query(q1, budget=Budget(max_candidates=3))
    assert partial.degraded
    assert DegradationCause.CLUSTER_TRUNCATION in partial.causes()


def test_on_budget_raise_carries_partial(govtrack_engine, q1):
    with pytest.raises(QueryTimeout) as info:
        govtrack_engine.query(q1, deadline_ms=0, on_budget="raise")
    exc = info.value
    assert isinstance(exc, TimeoutError)
    assert exc.reasons
    assert isinstance(exc.partial, PartialResult)
    assert exc.partial.reasons == exc.reasons


def test_query_argument_validation(govtrack_engine, q1):
    with pytest.raises(ValueError, match="on_budget"):
        govtrack_engine.query(q1, on_budget="bogus")
    with pytest.raises(ValueError, match="not both"):
        govtrack_engine.query(q1, deadline_ms=5, budget=Budget())


def test_forest_honours_budget(govtrack_engine, q1):
    prepared = govtrack_engine.prepare(q1)
    clusters = govtrack_engine.clusters(prepared)
    full = PathForest(clusters, prepared.ig)
    assert full.edges, "q1 should produce a non-trivial forest"
    budget = Budget(deadline_ms=0)
    truncated = PathForest(clusters, prepared.ig, budget=budget)
    assert truncated.truncated
    assert len(truncated.edges) < len(full.edges)
    assert budget.degraded


# -- Budget / PartialResult units ---------------------------------------------


def test_budget_zero_deadline_trips_first_poll():
    budget = Budget(deadline_ms=0)
    reason = budget.poll("prepare")
    assert reason is not None
    assert reason.cause is DegradationCause.DEADLINE
    assert reason.phase == "prepare"
    assert budget.degraded


def test_budget_poll_strides_clock_reads():
    calls = [0]

    def clock():
        calls[0] += 1
        return 0.0

    budget = Budget(deadline_ms=1_000, clock=clock, check_stride=10)
    before = calls[0]
    for _ in range(100):
        assert budget.poll("search") is None
    # First poll always checks, then every 10th: 1 + 10 clock reads.
    assert calls[0] - before == 11


def test_budget_notes_deduplicate_per_cause_and_phase():
    budget = Budget()
    first = budget.note(DegradationCause.DEADLINE, "search", "a")
    second = budget.note(DegradationCause.DEADLINE, "search", "b")
    other = budget.note(DegradationCause.DEADLINE, "cluster")
    assert first is second
    assert other is not first
    assert len(budget.reasons) == 2


def test_budget_charge_caps():
    budget = Budget(max_expansions=3, max_candidates=4)
    assert budget.charge_expansion() is None
    assert budget.charge_expansion() is None
    reason = budget.charge_expansion()
    assert reason.cause is DegradationCause.EXPANSION_CAP
    reason = budget.charge_candidates(10)
    assert reason.cause is DegradationCause.CLUSTER_TRUNCATION
    assert budget.expansions == 3
    assert budget.candidates == 10


def test_budget_rejects_bad_arguments():
    with pytest.raises(ValueError):
        Budget(deadline_ms=-1)
    with pytest.raises(ValueError):
        Budget(check_stride=0)


def test_budget_restart_rearms_deadline():
    now = [0.0]
    budget = Budget(deadline_ms=100, clock=lambda: now[0])
    now[0] = 1.0
    assert budget.expired()
    budget.restart()
    assert not budget.expired()
    assert budget.remaining_ms() == pytest.approx(100.0)


def test_partial_result_is_a_plain_list_with_reasons():
    reason = DegradationReason(DegradationCause.DEADLINE, "search")
    partial = PartialResult([1, 2], reasons=[reason])
    assert partial == [1, 2]
    assert partial[0] == 1
    assert partial.degraded and not partial.complete
    assert partial.causes() == {DegradationCause.DEADLINE}
    complete = PartialResult([3])
    assert complete.complete and not complete.degraded


# -- retry policy units --------------------------------------------------------


def test_retry_call_heals_transient_blip():
    sleeps = []
    policy = RetryPolicy(max_attempts=3, sleep=sleeps.append)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise TransientStorageError("blip")
        return "ok"

    assert retry_call(flaky, policy=policy) == "ok"
    assert len(attempts) == 3
    assert sleeps == [policy.delay_for(1), policy.delay_for(2)]


def test_retry_call_exhausts_then_raises():
    policy = RetryPolicy(max_attempts=2, sleep=lambda _s: None)
    calls = []

    def broken():
        calls.append(1)
        raise TransientStorageError("still down")

    with pytest.raises(TransientStorageError):
        retry_call(broken, policy=policy)
    assert len(calls) == 2


def test_retry_call_does_not_mask_other_errors():
    def broken():
        raise KeyError("not retryable")

    with pytest.raises(KeyError):
        retry_call(broken,
                   policy=RetryPolicy(sleep=lambda _s: None))


def test_no_retry_is_a_single_attempt():
    calls = []

    def broken():
        calls.append(1)
        raise TransientStorageError("x")

    with pytest.raises(TransientStorageError):
        retry_call(broken, policy=NO_RETRY)
    assert len(calls) == 1


def test_backoff_grows_then_caps():
    policy = RetryPolicy(base_delay=0.01, multiplier=4.0, max_delay=0.05)
    assert policy.delay_for(1) == pytest.approx(0.01)
    assert policy.delay_for(2) == pytest.approx(0.04)
    assert policy.delay_for(3) == pytest.approx(0.05)


def test_default_retry_covers_corruption_too():
    assert TransientStorageError in DEFAULT_RETRY.retry_on
    assert PageCorruptError in DEFAULT_RETRY.retry_on


def test_bufferpool_counts_retries(tmp_path):
    with PageStore(tmp_path / "pages.db", page_size=128) as store:
        page = store.allocate()
        store.write_page(page, b"resilient")
        install(store, FaultPlan(seed=21, fail_reads=(0,), max_failures=1))
        pool = BufferPool(store, capacity=4,
                          retry=RetryPolicy(sleep=lambda _s: None))
        data = pool.read_page(page)
        assert data.startswith(b"resilient")
        assert pool.stats.retries == 1


# -- query validation (satellite b) -------------------------------------------


def test_empty_query_rejected(govtrack_engine):
    with pytest.raises(InvalidQueryError):
        govtrack_engine.query(QueryGraph(name="empty"))


def test_unbound_only_query_rejected(govtrack_engine):
    query = QueryGraph(name="unbound")
    query.add_triples([("?s", "?p", "?o")])
    with pytest.raises(InvalidQueryError, match="no constants"):
        govtrack_engine.query(query)


def test_disconnected_query_rejected(govtrack_engine):
    query = QueryGraph(name="disconnected")
    query.add_triples([
        ("?a", "http://example.org/p", "one"),
        ("?b", "http://example.org/q", "two"),
    ])
    with pytest.raises(InvalidQueryError, match="disconnected"):
        govtrack_engine.query(query)


# -- parse diagnostics (satellite a) ------------------------------------------


def test_parse_error_carries_line_and_column():
    with pytest.raises(ParseError) as info:
        parse_select("SELECT ?x WHERE { ?x")
    exc = info.value
    assert isinstance(exc, ValueError)
    assert exc.line == 1 and isinstance(exc.column, int)
    assert exc.one_line().startswith(f"parse error at {exc.location}")


def test_unterminated_string_reports_its_start():
    with pytest.raises(ParseError) as info:
        parse_select('SELECT ?x WHERE { ?x <http://p> "oops . }')
    assert info.value.line == 1
    assert "unterminated string" in str(info.value)


# -- error taxonomy ------------------------------------------------------------


def test_error_hierarchy_preserves_builtin_bases():
    from repro.resilience import errors
    assert issubclass(errors.ParseError, ReproError)
    assert issubclass(errors.ParseError, ValueError)
    assert issubclass(errors.InvalidQueryError, ReproError)
    assert issubclass(errors.InvalidQueryError, ValueError)
    assert issubclass(errors.QueryTimeout, ReproError)
    assert issubclass(errors.QueryTimeout, TimeoutError)
    assert issubclass(errors.StorageError, ReproError)
    assert issubclass(errors.StorageError, RuntimeError)
    assert issubclass(errors.TransientStorageError, errors.StorageError)
    assert issubclass(errors.PageCorruptError, errors.StorageError)
    assert issubclass(errors.IndexCorruptError, ReproError)
    assert issubclass(errors.IndexCorruptError, RuntimeError)


def test_legacy_import_locations_still_work():
    from repro.index.pathindex import IndexCorruptError as legacy_index
    from repro.storage.pagestore import StorageError as legacy_storage
    assert legacy_index is IndexCorruptError
    assert legacy_storage is StorageError


# -- CLI surface (satellites a + tentpole flags) ------------------------------


def test_cli_deadline_without_partial_ok_exits_4(shared_index_dir, capsys):
    code = cli_main(["query", shared_index_dir, "-e", Q1_SPARQL,
                     "--deadline-ms", "0"])
    assert code == 4
    err = capsys.readouterr().err
    assert "budget exhausted" in err
    assert "--partial-ok" in err


def test_cli_partial_ok_prints_degradation(shared_index_dir, capsys):
    code = cli_main(["query", shared_index_dir, "-e", Q1_SPARQL,
                     "--deadline-ms", "0", "--partial-ok"])
    captured = capsys.readouterr()
    # A 0 ms budget finds nothing: "no answers", exit 1, reasons on stderr.
    assert code == 1
    assert "no answers" in captured.out
    assert "partial: deadline in prepare" in captured.err


def test_cli_full_deadline_query_succeeds(shared_index_dir, capsys):
    code = cli_main(["query", shared_index_dir, "-e", Q1_SPARQL,
                     "--deadline-ms", "60000", "--partial-ok"])
    captured = capsys.readouterr()
    assert code == 0
    assert "score=" in captured.out
    assert "partial:" not in captured.err


def test_cli_parse_error_is_one_line(shared_index_dir, capsys):
    code = cli_main(["query", shared_index_dir, "-e", "SELECT ?x WHERE { ?x"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: parse error at 1:")
    assert "Traceback" not in err


def test_cli_negative_deadline_rejected_by_argparse(shared_index_dir, capsys):
    # A bare ValueError from Budget must not escape as a traceback; the
    # flag validates at the argparse layer (usage error, exit 2).
    with pytest.raises(SystemExit) as info:
        cli_main(["query", shared_index_dir, "-e", Q1_SPARQL,
                  "--deadline-ms", "-5"])
    assert info.value.code == 2
    assert "must be >= 0" in capsys.readouterr().err


def test_cli_invalid_query_exits_3(shared_index_dir, capsys):
    code = cli_main(["query", shared_index_dir, "-e",
                     "SELECT * WHERE { ?s ?p ?o . }"])
    assert code == 3
    err = capsys.readouterr().err
    assert err.startswith("error: InvalidQueryError:")
