"""Smoke tests for the experiment runner (the table/figure CLI)."""

import pytest

from repro.evaluation import runner


class TestTable1:
    def test_tiny_scale_renders_all_rows(self):
        report = runner.run_table1(scale=0.05)
        for name in ("PBLOG", "GOV", "KEGG", "BERLIN", "IMDB", "LUBM",
                     "UOBM", "DBLP"):
            assert name in report
        assert "Table 1" in report
        assert "|HV|" in report


class TestScalabilityPanels:
    def test_fig7b_small(self):
        report = runner.run_fig7b(scale=0.1)
        assert "trendline" in report
        assert "Fig. 7b" in report

    def test_fig7c_small(self):
        report = runner.run_fig7c(scale=0.1)
        assert "Fig. 7c" in report


class TestRR:
    def test_rr_report_small(self):
        report = runner.run_rr(scale=0.15)
        assert "Reciprocal rank" in report
        assert "Q1" in report


class TestCli:
    def test_main_runs_one_experiment(self, capsys):
        assert runner.main(["table1", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["fig99"])

    def test_seed_flag_accepted(self, capsys):
        assert runner.main(["table1", "--scale", "0.05", "--seed", "3"]) == 0


class TestAblations:
    def test_weights_ablation_renders(self):
        report = runner.run_weights_ablation(scale=0.15)
        assert "paper" in report
        assert "structure-only" in report
        assert "mean RR" in report

    def test_extensions_report(self):
        report = runner.run_extensions(scale=0.3)
        assert "compression ratio" in report
        assert "incremental update" in report
