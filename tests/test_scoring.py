"""Unit tests for the scoring package: weights, λ/Λ, ψ/Ψ, score."""

import pytest

from repro.paths.alignment import AlignmentCounts, align
from repro.paths.intersection import IntersectionGraph
from repro.paths.model import path_of
from repro.scoring import (PAPER_WEIGHTS, ScoringWeights, conformity,
                           conformity_degree, lambda_cost, pairwise_degrees,
                           psi, quality, score_paths, score_value)


class TestWeights:
    def test_paper_configuration(self):
        w = ScoringWeights.paper()
        assert (w.node_mismatch, w.node_insertion,
                w.edge_mismatch, w.edge_insertion) == (1.0, 0.5, 2.0, 1.0)

    def test_deletions_default_zero(self):
        assert PAPER_WEIGHTS.node_deletion == 0.0
        assert PAPER_WEIGHTS.edge_deletion == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ScoringWeights(node_mismatch=-1)

    def test_presets(self):
        assert ScoringWeights.uniform(2.0).edge_mismatch == 2.0
        assert ScoringWeights.structure_only().node_mismatch == 0.0
        assert ScoringWeights.labels_only().node_insertion == 0.0

    def test_with_conformity(self):
        assert PAPER_WEIGHTS.with_conformity(3.0).conformity == 3.0

    def test_insertion_pair_cost(self):
        assert PAPER_WEIGHTS.insertion_pair_cost == 1.5


class TestLambda:
    def test_equation_one(self):
        counts = AlignmentCounts(node_mismatches=2, node_insertions=1,
                                 edge_mismatches=1, edge_insertions=3)
        # a*2 + b*1 + c*1 + d*3 = 2 + 0.5 + 2 + 3
        assert lambda_cost(counts) == 7.5

    def test_accepts_alignment_object(self):
        p = path_of("A", "p", "B")
        q = path_of("?x", "p", "B")
        assert lambda_cost(align(p, q)) == 0.0

    def test_deletions_priced_when_configured(self):
        counts = AlignmentCounts(node_deletions=2, edge_deletions=2)
        weights = ScoringWeights(node_deletion=1.0, edge_deletion=0.5)
        assert lambda_cost(counts, weights) == 3.0

    def test_quality_sums(self):
        p = path_of("CB", "sponsor", "A0056", "aTo", "B1432", "subject", "HC")
        q1 = path_of("CB", "sponsor", "?v1", "aTo", "?v2", "subject", "HC")
        q2 = path_of("?v3", "sponsor", "?v2", "subject", "HC")
        alignments = [align(p, q1), align(p, q2)]
        assert quality(alignments) == 0.0 + 1.5


class TestPsi:
    Q1 = path_of("CB", "sponsor", "?v1", "aTo", "?v2", "subject", "HC")
    Q2 = path_of("?v3", "sponsor", "?v2", "subject", "HC")
    P1 = path_of("CB", "sponsor", "A0056", "aTo", "B1432", "subject", "HC")
    P10 = path_of("PD", "sponsor", "B1432", "subject", "HC")
    P7 = path_of("JR", "sponsor", "B0045", "subject", "HC")

    def test_perfect_conformity_distance(self):
        # χ(q1,q2) = {?v2, HC} (2); χ(p1,p10) = {B1432, HC} (2) -> e*2/2.
        assert psi(self.Q1, self.Q2, self.P1, self.P10) == 1.0

    def test_deficient_conformity_higher_distance(self):
        # χ(p1,p7) = {HC} (1) -> e*2/1 = 2.
        assert psi(self.Q1, self.Q2, self.P1, self.P7) == 2.0

    def test_broken_pair_full_penalty(self):
        far = path_of("X", "p", "Y")
        assert psi(self.Q1, self.Q2, self.P1, far) == 2.0

    def test_non_intersecting_query_pair_contributes_zero(self):
        qa = path_of("?a", "p", "X")
        qb = path_of("?b", "q", "Y")
        assert psi(qa, qb, self.P1, self.P10) == 0.0

    def test_conformity_weight_scales(self):
        weights = PAPER_WEIGHTS.with_conformity(2.0)
        assert psi(self.Q1, self.Q2, self.P1, self.P10, weights) == 2.0

    def test_degree_fig4_labels(self):
        # (p10, p1): degree 1; (p7, p1): degree 0.5 (the dashed edge).
        assert conformity_degree(self.Q2, self.Q1, self.P10, self.P1) == 1.0
        assert conformity_degree(self.Q2, self.Q1, self.P7, self.P1) == 0.5

    def test_degree_nonintersecting_queries_is_one(self):
        qa = path_of("?a", "p", "X")
        qb = path_of("?b", "q", "Y")
        assert conformity_degree(qa, qb, self.P1, self.P7) == 1.0


class TestConformityAggregate:
    def test_conformity_over_ig(self, q1):
        from repro.paths.extraction import query_paths
        paths = query_paths(q1)
        ig = IntersectionGraph(paths)
        # Perfectly matching data paths: reuse query paths as data.
        assert conformity(ig, paths) == pytest.approx(
            sum(1.0 for _ in ig.edges()))

    def test_length_mismatch_rejected(self, q1):
        from repro.paths.extraction import query_paths
        paths = query_paths(q1)
        ig = IntersectionGraph(paths)
        with pytest.raises(ValueError):
            conformity(ig, paths[:-1])

    def test_pairwise_degrees(self):
        a = path_of("A", "p", "Z")
        b = path_of("B", "q", "Z")
        ig = IntersectionGraph([a, b])
        degrees = pairwise_degrees(ig, [a, b])
        assert degrees == {(0, 1): 1.0}


class TestScore:
    def test_exact_answer_score_is_conformity_floor(self, q1):
        from repro.paths.extraction import query_paths
        paths = query_paths(q1)
        breakdown = score_paths(paths, paths)
        assert breakdown.quality == 0.0
        assert breakdown.total == breakdown.conformity

    def test_score_value_shortcut(self):
        p = [path_of("A", "p", "B")]
        q = [path_of("?x", "p", "B")]
        assert score_value(p, q) == score_paths(p, q).total

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            score_paths([path_of("A", "p", "B")], [])

    def test_breakdown_lambda_of(self):
        p = [path_of("A", "p", "B")]
        q = [path_of("C", "p", "B")]
        breakdown = score_paths(p, q)
        assert breakdown.lambda_of(0) == 1.0

    def test_str(self):
        p = [path_of("A", "p", "B")]
        breakdown = score_paths(p, p)
        assert "score=" in str(breakdown)
