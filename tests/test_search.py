"""Unit tests for the top-k search (§5 step 3)."""

import pytest

from repro.engine.search import SearchConfig, top_k
from repro.rdf.graph import QueryGraph
from repro.rdf.terms import Literal


GOV = "http://example.org/govtrack/"


class TestFirstSolution:
    def test_paper_first_solution(self, govtrack_engine, q1):
        """The first solution combines p1, p10 and p20 (§5)."""
        answer = govtrack_engine.query(q1, k=1)[0]
        texts = sorted(e.path.text() for e in answer.entries)
        assert texts == [
            "CarlaBunes-sponsor-A0056-aTo-B1432-subject-Health Care",
            "PierceDickes-gender-Male",
            "PierceDickes-sponsor-B1432-subject-Health Care",
        ]

    def test_first_solution_is_conforming(self, govtrack_engine, q1):
        answer = govtrack_engine.query(q1, k=1)[0]
        assert answer.broken_pairs == 0
        assert answer.is_coherent

    def test_q2_answered_approximately(self, govtrack_engine, q2):
        answers = govtrack_engine.query(q2, k=3)
        assert answers
        assert not answers[0].is_exact  # no exact answer exists


class TestMonotonicity:
    """§6.3: answers emerge in non-decreasing score order (RR = 1)."""

    def test_scores_non_decreasing(self, govtrack_engine, q1, q2):
        for query in (q1, q2):
            answers = govtrack_engine.query(query, k=10)
            scores = [answer.score for answer in answers]
            assert scores == sorted(scores)

    def test_lubm_scores_non_decreasing(self, lubm_engine):
        from repro.datasets import lubm_queries
        for spec in lubm_queries()[:4]:
            answers = lubm_engine.query(spec.graph, k=10)
            scores = [answer.score for answer in answers]
            assert scores == sorted(scores)


class TestSearchConfig:
    def test_k_respected(self, govtrack_engine, q1):
        assert len(govtrack_engine.query(q1, k=3)) == 3
        assert len(govtrack_engine.query(q1, k=7)) == 7

    def test_dedupe_removes_triple_duplicates(self, govtrack_engine, q1):
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        deduped = top_k(prepared, clusters,
                        config=SearchConfig(k=50, dedupe=True))
        raw = top_k(prepared, clusters,
                    config=SearchConfig(k=50, dedupe=False))
        signatures = [a.signature() for a in deduped.answers]
        assert len(set(signatures)) == len(signatures)
        assert len(raw.answers) >= len(deduped.answers)

    def test_strict_bindings_drops_incoherent(self, govtrack_engine, q1):
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        strict = top_k(prepared, clusters,
                       config=SearchConfig(k=20, strict_bindings=True))
        assert strict.answers
        assert all(answer.is_coherent for answer in strict.answers)

    def test_max_expansions_reports_exhaustion(self, govtrack_engine, q1):
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        result = top_k(prepared, clusters,
                       config=SearchConfig(k=100, max_expansions=5))
        assert not result.exhausted
        assert result.expansions == 5

    def test_exact_mode_unlimited_siblings(self, govtrack_engine, q1):
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        exact = top_k(prepared, clusters,
                      config=SearchConfig(k=5, sibling_limit=None,
                                          patience=None))
        default = top_k(prepared, clusters, config=SearchConfig(k=5))
        assert [a.score for a in exact.answers] == \
            [a.score for a in default.answers]

    def test_result_is_sequence(self, govtrack_engine, q1):
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        result = top_k(prepared, clusters, config=SearchConfig(k=4))
        assert len(result) == 4
        assert result[0].score <= result[-1].score
        assert list(iter(result)) == result.answers


class TestDegenerateInputs:
    def test_single_path_query(self, govtrack_engine):
        q = QueryGraph()
        q.add_triple("?v", GOV + "gender", Literal("Male"))
        answers = govtrack_engine.query(q, k=10)
        assert len(answers) == 4
        assert all(a.score == 0 for a in answers)

    def test_unmatchable_query_gets_missing_answers(self, govtrack_engine):
        q = QueryGraph()
        q.add_triples([
            ("?a", "http://nowhere/p", Literal("Unfindable Sink Label")),
            ("?a", GOV + "gender", Literal("Male")),
        ])
        answers = govtrack_engine.query(q, k=3)
        assert answers
        top = answers[0]
        assert top.matched_count == 1  # only the gender path covered
        assert not top.is_complete

    def test_fully_unmatchable_query_no_answers(self, govtrack_engine):
        q = QueryGraph()
        q.add_triple("?a", "http://nowhere/p", Literal("Unfindable Thing"))
        assert govtrack_engine.query(q, k=3) == []

    def test_cluster_count_mismatch_rejected(self, govtrack_engine, q1):
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        with pytest.raises(ValueError):
            top_k(prepared, clusters[:-1])

    def test_ground_query(self, govtrack_engine):
        """A fully ground query (no variables) still answers."""
        q = QueryGraph()
        q.add_triple(GOV + "PierceDickes", GOV + "gender", Literal("Male"))
        answers = govtrack_engine.query(q, k=1)
        assert answers[0].is_exact
