"""Exactness of the top-k search against brute-force enumeration.

In exact mode (no sibling limit, no patience) the A* join must return
exactly the best-scoring combinations that brute force finds.  These
tests enumerate every combination on small instances and compare.
"""

import itertools
import random

import pytest

from repro.engine.clustering import build_clusters
from repro.engine.preprocess import prepare_query
from repro.engine.search import SearchConfig, top_k
from repro.paths.intersection import chi
from repro.rdf.graph import DataGraph, QueryGraph
from repro.rdf.terms import Literal
from repro.scoring.weights import PAPER_WEIGHTS


def uri(name):
    return f"http://x/{name}"


def brute_force_best(prepared, clusters, weights=PAPER_WEIGHTS) -> float:
    """The minimum score over every combination (missing only when a
    cluster is empty), mirroring the search's combination space."""
    domains = []
    for cluster in clusters:
        if cluster.entries:
            domains.append(list(cluster.entries))
        else:
            domains.append([None])
    best = float("inf")
    for combination in itertools.product(*domains):
        quality = 0.0
        covered = 0
        for cluster, entry in zip(clusters, combination):
            if entry is None:
                quality += cluster.missing_penalty
            else:
                quality += entry.score
                covered += 1
        if covered == 0:
            continue
        conformity = 0.0
        for i, j, shared in prepared.ig.edges():
            entry_i, entry_j = combination[i], combination[j]
            if entry_i is None or entry_j is None:
                conformity += weights.conformity * len(shared)
                continue
            common = len(chi(entry_i.path, entry_j.path))
            if common == 0:
                conformity += weights.conformity * len(shared)
            else:
                conformity += weights.conformity * len(shared) / common
        best = min(best, quality + conformity)
    return best


EXACT = SearchConfig(k=3, sibling_limit=None, patience=None)


def _check(engine, query):
    prepared = engine.prepare(query)
    clusters = engine.clusters(prepared)
    # Keep brute force tractable.
    total = 1
    for cluster in clusters:
        total *= max(len(cluster.entries), 1)
    assert total <= 50_000, "instance too large for brute force"
    result = top_k(prepared, clusters, config=EXACT)
    assert result.answers, "search found nothing"
    expected = brute_force_best(prepared, clusters)
    assert result.answers[0].score == pytest.approx(expected)


class TestGovTrackExactness:
    def test_q1(self, govtrack_engine, q1):
        _check(govtrack_engine, q1)

    def test_q2(self, govtrack_engine, q2):
        _check(govtrack_engine, q2)

    def test_single_path(self, govtrack_engine):
        q = QueryGraph()
        q.add_triple("?v", "http://example.org/govtrack/gender",
                     Literal("Male"))
        _check(govtrack_engine, q)


class TestRandomGraphExactness:
    @pytest.mark.parametrize("seed", [3, 7, 13, 21])
    def test_random_instances(self, seed):
        from repro.engine import SamaEngine

        rng = random.Random(seed)
        labels = ["p", "q", "r"]
        entities = [uri(f"n{i}") for i in range(12)]
        triples = set()
        for _ in range(18):
            i = rng.randrange(len(entities))
            j = rng.randrange(len(entities))
            if i < j:  # DAG keeps path extraction small
                triples.add((entities[i], uri(rng.choice(labels)),
                             entities[j]))
        graph = DataGraph.from_triples(sorted(triples))
        engine = SamaEngine.from_graph(graph)
        # A two-path query over the generated vocabulary.
        query = QueryGraph()
        query.add_triple("?a", uri("p"), "?b")
        query.add_triple("?c", uri("q"), "?b")
        prepared = engine.prepare(query)
        clusters = engine.clusters(prepared)
        if not any(cluster.entries for cluster in clusters):
            pytest.skip("degenerate instance: no candidates at all")
        result = top_k(prepared, clusters, config=EXACT)
        expected = brute_force_best(prepared, clusters)
        assert result.answers[0].score == pytest.approx(expected)
        engine.close()

    def test_default_config_matches_exact_top1_on_govtrack(
            self, govtrack_engine, q1):
        """The production config may truncate, but on the small running
        example its best answer equals the exact optimum."""
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        default = top_k(prepared, clusters, config=SearchConfig(k=1))
        exact = top_k(prepared, clusters, config=EXACT)
        assert default.answers[0].score == exact.answers[0].score


class TestNaiveReference:
    def test_naive_matches_exact_search(self, govtrack_engine, q1):
        from repro.engine.naive import naive_top_k
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        naive = naive_top_k(prepared, clusters, k=5)
        exact = top_k(prepared, clusters,
                      config=SearchConfig(k=5, sibling_limit=None,
                                          patience=None))
        assert [a.score for a in naive.answers] == \
            [a.score for a in exact.answers]

    def test_naive_refuses_explosions(self, govtrack_engine, q1):
        from repro.engine.naive import naive_top_k
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        with pytest.raises(ValueError):
            naive_top_k(prepared, clusters, max_combinations=10)

    def test_per_cluster_truncation(self, govtrack_engine, q1):
        from repro.engine.naive import naive_top_k
        prepared = govtrack_engine.prepare(q1)
        clusters = govtrack_engine.clusters(prepared)
        result = naive_top_k(prepared, clusters, k=3, per_cluster=2)
        assert result.expansions <= 2 ** len(clusters)
        assert result.answers
