"""Unit + property tests for the binary path codec."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paths.model import Path
from repro.rdf.terms import BlankNode, Literal, URI, Variable
from repro.storage.serializer import (CodecError, decode_path, encode_path,
                                      read_term, read_varint, write_term,
                                      write_varint)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2 ** 32, 2 ** 62])
    def test_roundtrip(self, value):
        buffer = io.BytesIO()
        write_varint(buffer, value)
        buffer.seek(0)
        assert read_varint(buffer) == value

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            write_varint(io.BytesIO(), -1)

    def test_truncated_raises(self):
        with pytest.raises(CodecError):
            read_varint(io.BytesIO(b"\x80"))


class TestTermCodec:
    @pytest.mark.parametrize("term", [
        URI("http://x/a"),
        Literal("plain"),
        Literal("tagged", language="en"),
        Literal("typed", datatype=URI("http://x/dt")),
        BlankNode("b1"),
        Variable("v2"),
        Literal("unicode é ☃"),
        Literal(""),
    ])
    def test_roundtrip(self, term):
        buffer = io.BytesIO()
        write_term(buffer, term)
        buffer.seek(0)
        assert read_term(buffer) == term

    def test_unknown_tag_raises(self):
        with pytest.raises(CodecError):
            read_term(io.BytesIO(b"Z\x00"))

    def test_truncated_term_raises(self):
        with pytest.raises(CodecError):
            read_term(io.BytesIO(b""))


class TestPathCodec:
    def test_roundtrip_with_node_ids(self):
        path = Path([URI("http://x/a"), Literal("L")], [URI("http://x/p")],
                    node_ids=[7, 9])
        decoded = decode_path(encode_path(path))
        assert decoded == path
        assert decoded.node_ids == (7, 9)

    def test_roundtrip_without_node_ids(self):
        path = Path([URI("http://x/a")], [])
        assert decode_path(encode_path(path)).node_ids is None

    def test_corrupt_flag_raises(self):
        path = Path([URI("http://x/a")], [])
        blob = encode_path(path)
        with pytest.raises(CodecError):
            decode_path(blob[:-1] + b"\x07")

    def test_empty_blob_raises(self):
        with pytest.raises(CodecError):
            decode_path(b"")


# --- property-based: any path survives the codec -----------------------

_text = st.text(min_size=0, max_size=30)
_nonempty = st.text(min_size=1, max_size=30)

_terms = st.one_of(
    _nonempty.map(lambda s: URI("http://x/" + s.replace(" ", "_"))),
    _text.map(Literal),
    _nonempty.map(lambda s: Literal(s, language="en")),
    _nonempty.map(lambda s: BlankNode(s.replace(" ", "_") or "b")),
    _nonempty.map(lambda s: Variable("v" + s.replace(" ", "_"))),
)


@st.composite
def _paths(draw):
    length = draw(st.integers(min_value=1, max_value=8))
    nodes = [draw(_terms) for _ in range(length)]
    edges = [URI(f"http://x/e{i}") for i in range(length - 1)]
    with_ids = draw(st.booleans())
    node_ids = (list(range(100, 100 + length))) if with_ids else None
    return Path(nodes, edges, node_ids=node_ids)


@given(_paths())
@settings(max_examples=150, deadline=None)
def test_codec_roundtrip_property(path):
    decoded = decode_path(encode_path(path))
    assert decoded == path
    assert decoded.node_ids == path.node_ids


@given(st.lists(st.integers(min_value=0, max_value=2 ** 60), max_size=30))
@settings(deadline=None)
def test_varint_stream_roundtrip(values):
    buffer = io.BytesIO()
    for value in values:
        write_varint(buffer, value)
    buffer.seek(0)
    assert [read_varint(buffer) for _ in values] == values
