"""The serving layer: caching, admission control, epoch invalidation.

These run against the in-process :class:`ServingEngine`; the HTTP
front end has its own end-to-end file (``test_serving_http.py``).
"""

import threading

import pytest

from repro.engine import SamaEngine
from repro.index.incremental import IncrementalIndex
from repro.rdf.terms import Literal, URI, Variable
from repro.resilience import OverloadedError
from repro.serving import CachedResult, ResultCache, ServingConfig, ServingEngine


def _ranking(answers):
    return [(round(a.score, 9), str(a)) for a in answers]


@pytest.fixture
def serving(govtrack_engine):
    """A serving engine over the session GovTrack index (not closed)."""
    service = ServingEngine(govtrack_engine, ServingConfig(workers=2))
    yield service
    service.close(close_engine=False)


class TestServingEngine:
    def test_served_ranking_matches_direct_query(self, serving,
                                                 govtrack_engine, q1):
        served = serving.query(q1, k=5)
        direct = govtrack_engine.query(q1, k=5)
        assert _ranking(served.answers) == _ranking(direct)
        assert served.cached is False
        assert served.complete

    def test_second_request_is_a_cache_hit(self, serving, q1):
        first = serving.query(q1, k=5)
        second = serving.query(q1, k=5)
        assert first.cached is False and second.cached is True
        assert second.payload == first.payload
        assert serving.cache.stats.hits == 1
        assert serving.stats_payload()["cache"]["entries"] == 1

    def test_renamed_reordered_query_hits_same_entry(self, serving, q1):
        serving.query(q1, k=5)
        mapping = {v: Variable(f"other_{v.value}") for v in q1.variables()}
        renamed = type(q1)(name="renamed")
        for triple in reversed(list(q1.triples())):
            renamed.add_triple(*(mapping.get(t, t) for t in triple))
        again = serving.query(renamed, k=5)
        assert again.cached is True

    def test_different_k_is_a_different_entry(self, serving, q1):
        serving.query(q1, k=3)
        other = serving.query(q1, k=5)
        assert other.cached is False
        assert len(serving.cache) == 2

    def test_degraded_results_are_not_cached(self, serving, q1):
        starved = serving.query(q1, k=5, deadline_ms=0.0)
        assert not starved.complete
        assert len(serving.cache) == 0
        again = serving.query(q1, k=5, deadline_ms=0.0)
        assert again.cached is False
        assert serving.stats.degraded >= 2

    def test_payload_is_json_shaped(self, serving, q1):
        payload = serving.query(q1, k=3).payload
        assert payload["k"] == 3 and payload["complete"] is True
        assert payload["answers"], "GovTrack Q1 has answers"
        top = payload["answers"][0]
        assert top["rank"] == 1 and top["score"] == 2.0
        assert all(name.startswith("?") for name in top["bindings"])

    def test_cache_can_be_disabled(self, govtrack_engine, q1):
        service = ServingEngine(govtrack_engine,
                                ServingConfig(cache_bytes=0))
        try:
            assert service.query(q1, k=5).cached is False
            assert service.query(q1, k=5).cached is False
            assert len(service.cache) == 0
        finally:
            service.close(close_engine=False)

    def test_closed_service_rejects_requests(self, govtrack_engine, q1):
        service = ServingEngine(govtrack_engine)
        service.close(close_engine=False)
        with pytest.raises(RuntimeError):
            service.submit(q1)


class TestAdmissionControl:
    @pytest.fixture
    def gated_engine(self, govtrack):
        """A private engine whose query() blocks until released."""
        engine = SamaEngine.from_graph(govtrack.copy())
        gate = threading.Event()
        inner = engine.query

        def gated_query(query, k=None, **kwargs):
            assert gate.wait(timeout=30), "test gate never opened"
            return inner(query, k=k, **kwargs)

        engine.query = gated_query
        yield engine, gate
        gate.set()
        engine.close()

    def test_over_capacity_requests_are_shed(self, gated_engine, q1):
        engine, gate = gated_engine
        service = ServingEngine(engine, ServingConfig(
            workers=1, max_queue=1, cache_bytes=0))
        try:
            admitted = [service.submit(q1, k=2) for _ in range(2)]
            with pytest.raises(OverloadedError) as excinfo:
                service.submit(q1, k=2)
            assert excinfo.value.capacity == 2
            assert service.stats.shed == 1
            gate.set()
            for future in admitted:
                assert future.result(timeout=30).complete
            assert service.in_flight == 0
        finally:
            service.close(close_engine=False)

    def test_cache_hits_are_served_even_at_capacity(self, gated_engine, q1):
        engine, gate = gated_engine
        service = ServingEngine(engine, ServingConfig(
            workers=1, max_queue=0))
        try:
            gate.set()
            service.query(q1, k=2)  # populate the cache
            gate.clear()
            blocked = service.submit(q1, k=3)  # occupies the only worker
            hit = service.query(q1, k=2)  # full capacity, but cached
            assert hit.cached is True
            gate.set()
            blocked.result(timeout=30)
        finally:
            service.close(close_engine=False)

    def test_shed_request_releases_no_capacity(self, gated_engine, q1):
        engine, gate = gated_engine
        service = ServingEngine(engine, ServingConfig(
            workers=1, max_queue=0, cache_bytes=0))
        try:
            first = service.submit(q1, k=2)
            for _ in range(3):
                with pytest.raises(OverloadedError):
                    service.submit(q1, k=2)
            gate.set()
            first.result(timeout=30)
            # Capacity recovered: the next request is admitted again.
            assert service.query(q1, k=2).complete
        finally:
            service.close(close_engine=False)


class TestEpochInvalidation:
    def test_index_update_invalidates_cached_results(self, tmp_path,
                                                     govtrack, q1):
        index = IncrementalIndex(govtrack.copy(), str(tmp_path / "inc"))
        service = ServingEngine(SamaEngine(index),
                                ServingConfig(workers=2))
        try:
            before = service.query(q1, k=10)
            assert service.query(q1, k=10).cached is True
            epoch = service.epoch

            index.add_triples([
                ("http://example.org/govtrack/NewPerson",
                 "http://example.org/govtrack/sponsor",
                 "http://example.org/govtrack/B1432"),
                ("http://example.org/govtrack/NewPerson",
                 "http://example.org/govtrack/gender", Literal("Male")),
            ])
            assert service.epoch > epoch

            after = service.query(q1, k=10)
            assert after.cached is False, "stale entry must be unreachable"
            bound = {row["bindings"].get("?v3", "")
                     for row in after.payload["answers"]}
            assert any("NewPerson" in value for value in bound)
            assert after.payload != before.payload
            # The stale entry was also physically dropped, not just hidden.
            assert all(entry.epoch == service.epoch
                       for entry in service.cache._entries.values())
        finally:
            service.close()

    def test_static_index_has_constant_epoch_zero(self, serving, q1):
        assert serving.epoch == 0
        serving.query(q1, k=5)
        assert serving.epoch == 0


class TestResultCache:
    def _entry(self, key, size, epoch=0):
        return CachedResult(answers=[], payload={"key": key},
                            size_bytes=size, epoch=epoch, key=key)

    def test_byte_budget_evicts_lru(self):
        cache = ResultCache(max_bytes=100)
        cache.put(self._entry("a", 40))
        cache.put(self._entry("b", 40))
        cache.get("a")  # freshen a; b is now LRU
        cache.put(self._entry("c", 40))
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.stats.evictions == 1
        assert cache.current_bytes <= 100

    def test_oversized_entries_are_rejected(self):
        cache = ResultCache(max_bytes=100)
        cache.put(self._entry("huge", 1000))
        assert len(cache) == 0

    def test_drop_stale_epochs(self):
        cache = ResultCache(max_bytes=1000)
        cache.put(self._entry("old", 10, epoch=1))
        cache.put(self._entry("new", 10, epoch=2))
        cache.drop_stale_epochs(2)
        assert cache.get("old") is None and cache.get("new") is not None
        assert cache.stats.stale_dropped == 1

    def test_replacing_a_key_keeps_accounting_straight(self):
        cache = ResultCache(max_bytes=100)
        cache.put(self._entry("a", 60))
        cache.put(self._entry("a", 30))
        assert cache.current_bytes == 30
        assert len(cache) == 1
