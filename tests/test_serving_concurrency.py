"""Serving-path races and cache edge cases (regression + stress).

Three regression suites pin the fixes for bugs that were visible in
the serving path:

- ``ServingEngine.submit`` check-and-set ``_seen_epoch`` without a
  lock, so two racing threads could both observe one epoch bump and
  double-run ``drop_stale_epochs`` (or a loser could regress
  ``_seen_epoch`` backwards);
- ``ResultCache.put`` admitted zero-byte entries when ``max_bytes ==
  0`` (``0 > 0`` is false) despite "0 disables caching", and
  ``clear()`` kept the old hit/miss counters;
- ``/stats`` read each ``ServingStats`` counter separately, so a
  reader could see ``served > requests`` mid-update.

The stress section hammers :class:`ResultCache` and
:class:`ServingStats` from many threads and checks the byte-accounting
and counter invariants at quiesce; the hypothesis test pins
percentile monotonicity.
"""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.resilience.budget import PartialResult
from repro.serving import (CachedResult, ResultCache, ServingConfig,
                           ServingEngine, ServingStats)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI installs hypothesis
    HAVE_HYPOTHESIS = False


def _entry(key: str, size: int, epoch: int = 0) -> CachedResult:
    return CachedResult(answers=PartialResult([]), payload={"k": key},
                        size_bytes=size, epoch=epoch, key=key)


# -- satellite 1: the submit() epoch race ------------------------------------

class _BumpableIndex:
    """Stands in for an IncrementalIndex whose epoch the test bumps."""

    def __init__(self):
        self.epoch = 0
        self.path_count = 0


class _FakeEngine:
    """The minimal engine surface ``ServingEngine.submit`` touches."""

    def __init__(self):
        self.index = _BumpableIndex()

    def _coerce_query(self, query):
        return query

    def query(self, graph, k=None, deadline_ms=None):
        return PartialResult([])

    def close(self):
        pass


class _CountingCache(ResultCache):
    def __init__(self):
        super().__init__(max_bytes=0)
        self.drops = 0

    def drop_stale_epochs(self, current_epoch):
        self.drops += 1
        return super().drop_stale_epochs(current_epoch)


class _SlowSeenEpochEngine(ServingEngine):
    """Widens the check-and-set window: reading ``_seen_epoch`` sleeps.

    On the pre-fix code two concurrent submits both read the stale
    value during the overlapping sleeps, both see the bump, and both
    drop — deterministically.  With the check-and-set under a lock the
    second reader cannot start until the first has written.
    """

    READ_DELAY = 0.05

    @property
    def _seen_epoch(self):
        value = self.__dict__["_seen_epoch_value"]
        time.sleep(self.READ_DELAY)
        return value

    @_seen_epoch.setter
    def _seen_epoch(self, value):
        self.__dict__["_seen_epoch_value"] = value


class TestSubmitEpochRace:
    def test_concurrent_submits_drop_stale_epochs_once(self):
        serving = _SlowSeenEpochEngine(
            _FakeEngine(), ServingConfig(workers=2, cache_bytes=0))
        serving.cache = _CountingCache()
        try:
            serving.engine.index.epoch = 1
            barrier = threading.Barrier(2)
            failures = []

            def submit():
                barrier.wait()
                try:
                    serving.query("q", k=1)
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
            assert serving.cache.drops == 1, (
                "both racing submits observed the same epoch bump")
            assert serving._seen_epoch == 1
        finally:
            serving.close()

    def test_older_epoch_reader_cannot_regress_seen_epoch(self):
        serving = ServingEngine(
            _FakeEngine(), ServingConfig(workers=1, cache_bytes=0))
        serving.cache = _CountingCache()
        try:
            serving.engine.index.epoch = 5
            serving.query("q", k=1)
            assert serving._seen_epoch == 5
            # A submit that read an older epoch (torn interleaving with
            # a newer bump) must not win the check-and-set.
            serving.engine.index.epoch = 3
            serving.query("q", k=1)
            assert serving._seen_epoch == 5, "seen epoch went backwards"
            assert serving.cache.drops == 1
        finally:
            serving.close()


# -- satellite 2: zero-budget cache admission + clear() ----------------------

class TestResultCacheEdgeCases:
    def test_zero_budget_cache_admits_nothing(self):
        cache = ResultCache(max_bytes=0)
        assert cache.put(_entry("zero", size=0)) is False
        assert cache.put(_entry("tiny", size=1)) is False
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.get("zero") is None

    def test_clear_resets_stats_with_entries(self):
        cache = ResultCache(max_bytes=1024)
        cache.put(_entry("a", size=10))
        cache.get("a")
        cache.get("missing")
        assert cache.stats.lookups == 2
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0
        assert cache.stats.hit_rate == 0.0

    def test_oversized_entry_still_rejected(self):
        cache = ResultCache(max_bytes=8)
        assert cache.put(_entry("big", size=9)) is False
        assert cache.put(_entry("fits", size=8)) is True


# -- satellite 3: consistent /stats snapshots --------------------------------

class TestStatsSnapshot:
    def test_snapshot_is_internally_consistent_under_load(self):
        stats = ServingStats()
        stop = threading.Event()
        violations = []
        previous_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            def writer():
                while not stop.is_set():
                    stats.note_request()
                    stats.record(1.0, degraded=True)

            def reader():
                for _ in range(3000):
                    snap = stats.snapshot()
                    if snap.served > snap.requests:
                        violations.append(
                            (snap.requests, snap.served))
                    if snap.degraded > snap.served:
                        violations.append(
                            ("degraded", snap.degraded, snap.served))
                stop.set()

            threads = [threading.Thread(target=writer) for _ in range(3)]
            threads.append(threading.Thread(target=reader))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(previous_interval)
        assert not violations, f"inconsistent snapshots: {violations[:3]}"

    def test_percentile_comes_from_one_snapshot(self):
        stats = ServingStats()
        for latency in (10.0, 20.0, 30.0, 40.0):
            stats.note_request()
            stats.record(latency)
        snap = stats.snapshot()
        assert snap.percentile(0.0) == 10.0
        assert snap.percentile(1.0) == 40.0
        assert stats.percentile(0.5) in (20.0, 30.0)
        assert stats.percentile(0.5) == snap.percentile(0.5)

    def test_empty_window_has_no_percentile(self):
        assert ServingStats().percentile(0.5) is None


# -- satellite 4: concurrency stress + property tests ------------------------

class TestConcurrencyStress:
    THREADS = 8
    OPS = 400

    def test_result_cache_byte_accounting_invariant(self):
        cache = ResultCache(max_bytes=4096)
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_id: int):
            barrier.wait()
            for op in range(self.OPS):
                key = f"k{(worker_id * 7 + op) % 64}"
                if op % 3 == 0:
                    cache.get(key)
                else:
                    cache.put(_entry(key, size=(op % 9) * 16,
                                     epoch=op % 4))
                if op % 97 == 0:
                    cache.drop_stale_epochs(2)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        with cache._lock:
            entries = list(cache._entries.values())
            current = cache._bytes
        assert current == sum(e.size_bytes for e in entries), (
            "byte accounting drifted from the entry map")
        assert current <= cache.max_bytes
        assert cache.current_bytes == current  # quiesced: same answer
        stats = cache.stats_snapshot()
        assert stats.lookups == stats.hits + stats.misses

    def test_stats_reads_are_locked_during_eviction(self):
        """``/stats`` readers racing eviction never see torn state.

        Regression for the unlocked ``current_bytes`` / ``__len__`` /
        ``__repr__`` reads: a scrape running concurrently with ``put``
        eviction could observe bytes from mid-eviction (entries popped,
        budget not yet released) — with the lock, every observed
        (bytes, entries) pair satisfies the budget invariant.
        """
        cache = ResultCache(max_bytes=1024)
        stop = threading.Event()
        violations: list = []
        previous_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            def writer(worker_id: int):
                for op in range(self.OPS):
                    cache.put(_entry(f"w{worker_id}-{op % 32}",
                                     size=128 + (op % 5) * 64,
                                     epoch=op % 3))
                    if op % 53 == 0:
                        cache.drop_stale_epochs(1)
                stop.set()

            def reader():
                while not stop.is_set():
                    observed = cache.current_bytes
                    entries = len(cache)
                    text = repr(cache)
                    if observed < 0 or observed > cache.max_bytes:
                        violations.append(("bytes", observed))
                    if entries == 0 and observed > 0 and stop.is_set():
                        violations.append(("empty-but-bytes", observed))
                    if "ResultCache" not in text:
                        violations.append(("repr", text))

            threads = [threading.Thread(target=writer, args=(i,))
                       for i in range(4)]
            threads.extend(threading.Thread(target=reader)
                           for _ in range(2))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(previous_interval)
        assert not violations, f"torn reads observed: {violations[:3]}"

    def test_serving_stats_counters_are_exact_at_quiesce(self):
        stats = ServingStats()

        def worker():
            for op in range(self.OPS):
                stats.note_request()
                if op % 5 == 0:
                    stats.note_shed()
                else:
                    stats.record(float(op % 50),
                                 error=op % 7 == 0,
                                 degraded=op % 3 == 0)

        threads = [threading.Thread(target=worker)
                   for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snap = stats.snapshot()
        per_thread_shed = len([op for op in range(self.OPS)
                               if op % 5 == 0])
        assert snap.requests == self.THREADS * self.OPS
        assert snap.shed == self.THREADS * per_thread_shed
        assert snap.served == snap.requests - snap.shed
        assert snap.errors <= snap.served
        assert snap.degraded <= snap.served


if HAVE_HYPOTHESIS:
    @settings(deadline=None, max_examples=60)
    @given(latencies=st.lists(
               st.floats(min_value=0.0, max_value=1e6,
                         allow_nan=False, allow_infinity=False),
               min_size=1, max_size=64),
           low=st.floats(min_value=0.0, max_value=1.0),
           high=st.floats(min_value=0.0, max_value=1.0))
    def test_percentile_is_monotone_in_fraction(latencies, low, high):
        stats = ServingStats()
        for latency in latencies:
            stats.record(latency)
        if low > high:
            low, high = high, low
        snap = stats.snapshot()
        assert snap.percentile(low) <= snap.percentile(high)
        assert snap.percentile(0.0) == min(latencies)
        assert snap.percentile(1.0) == max(latencies)
