"""End-to-end tests for the JSON-over-HTTP serving front end.

A real :class:`ThreadingHTTPServer` on an ephemeral port, exercised
through :class:`ServingClient` — the same path ``sama bench-serve``
and the CI smoke job take.
"""

import json
import threading
import urllib.request

import pytest

from repro.resilience import OverloadedError
from repro.serving import (ServingClient, ServingClientError, ServingConfig,
                           ServingEngine, serve)

QUERY = ('PREFIX gov: <http://example.org/govtrack/> '
         'SELECT ?v WHERE { ?v gov:gender "Male" . }')


@pytest.fixture
def server(govtrack_engine):
    """A background HTTP server on an ephemeral port."""
    serving = ServingEngine(govtrack_engine, ServingConfig(workers=2))
    http = serve(serving, port=0).serve_background()
    yield http
    http.shutdown(close_engine=False)


@pytest.fixture
def client(server):
    return ServingClient(server.url, timeout=30)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["paths"] > 0

    def test_query_roundtrip_then_cache_hit(self, client):
        first = client.query(QUERY, k=5)
        assert first["complete"] is True and first["cached"] is False
        assert first["answers"][0]["rank"] == 1
        assert "?v" in first["answers"][0]["bindings"]

        second = client.query(QUERY, k=5)
        assert second["cached"] is True
        assert second["answers"] == first["answers"]

        stats = client.stats()
        assert stats["cache"]["hits"] >= 1
        assert stats["served"] >= 2 and stats["errors"] == 0
        assert stats["latency_p50_ms"] is not None

    def test_deadline_is_honoured_per_request(self, client):
        starved = client.query(QUERY, k=5, deadline_ms=0)
        assert starved["complete"] is False
        assert starved["reasons"], "degradation must carry reasons"

    def test_parse_error_maps_to_400(self, client):
        with pytest.raises(ServingClientError) as excinfo:
            client.query("SELECT ?x WHERE { broken", k=5)
        assert excinfo.value.status == 400
        assert "Error" in excinfo.value.body["error"]  # typed parse error
        assert "1:19" in excinfo.value.body["message"]  # line:col diagnostic

    def test_bad_request_shapes_map_to_400(self, server, client):
        for payload in [{"k": 5}, {"query": ""}, {"query": QUERY, "k": 0},
                        {"query": QUERY, "deadline_ms": -1}]:
            with pytest.raises(ServingClientError) as excinfo:
                client._request("POST", "/query", payload)
            assert excinfo.value.status == 400
            assert excinfo.value.body["error"] == "BadRequest"
        # Non-JSON body.
        request = urllib.request.Request(
            server.url + "/query", data=b"not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as http_error:
            urllib.request.urlopen(request, timeout=10)
        assert http_error.value.code == 400

    def test_unknown_paths_are_404(self, client):
        with pytest.raises(ServingClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_concurrent_clients_agree(self, server, client):
        results, errors = [], []

        def worker():
            try:
                results.append(client.query(QUERY, k=5)["answers"])
            except Exception as exc:  # surfaced via the errors list
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(results) == 8
        canonical = json.dumps(results[0], sort_keys=True)
        assert all(json.dumps(r, sort_keys=True) == canonical
                   for r in results)


class TestOverloadOverHTTP:
    def test_503_with_retry_after(self, govtrack_engine):
        serving = ServingEngine(govtrack_engine, ServingConfig(
            workers=1, max_queue=0, cache_bytes=0))
        gate = threading.Event()
        inner = serving.engine.query

        def gated_query(query, k=None, **kwargs):
            assert gate.wait(timeout=30)
            return inner(query, k=k, **kwargs)

        serving.engine = _EngineProxy(govtrack_engine, gated_query)
        http = serve(serving, port=0).serve_background()
        client = ServingClient(http.url, timeout=30)
        try:
            blocker = threading.Thread(
                target=lambda: client.query(QUERY, k=2))
            blocker.start()
            deadline = threading.Event()
            for _ in range(200):  # wait until the worker holds the slot
                if serving.in_flight >= 1:
                    break
                deadline.wait(0.01)
            with pytest.raises(OverloadedError) as excinfo:
                client.query(QUERY, k=2)
            assert excinfo.value.capacity == 1
            gate.set()
            blocker.join(timeout=30)
        finally:
            gate.set()
            http.shutdown(close_engine=False)
            serving_stats = serving.stats
            assert serving_stats.shed >= 1


class _EngineProxy:
    """The wrapped engine with only ``query`` replaced."""

    def __init__(self, engine, query):
        self._engine = engine
        self.query = query

    def __getattr__(self, name):
        return getattr(self._engine, name)
