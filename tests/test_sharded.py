"""Sharded path index: layout, determinism, epochs, serving surface.

The load-bearing claim is *bit-identical rankings*: a ShardedIndex at
any shard count — serial or through the scatter-gather executor path —
must produce exactly the answers, scores and order of the plain
single-file index, including under candidate budgets.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import dataset, lubm_queries
from repro.engine import EngineConfig, SamaEngine
from repro.engine.clustering import AlignmentMemo, build_clusters
from repro.index import (IndexCorruptError, PathIndex, ShardedIndex,
                         build_index, build_sharded_index, is_sharded_dir,
                         reshard, shard_of, signature_hash)
from repro.index.incremental import IncrementalIndex
from repro.resilience.budget import Budget
from repro.serving import ServingConfig, ServingEngine


def ranking(result) -> list:
    return [(round(answer.score, 9), str(answer)) for answer in result]


# -- the stable signature hash ------------------------------------------------


class TestSignatureHash:
    def test_deterministic_and_order_insensitive(self):
        assert signature_hash([3, 1, 2]) == signature_hash([2, 3, 1])
        assert signature_hash([1, 1, 2]) == signature_hash([2, 1])

    def test_seed_changes_assignment(self):
        values = {signature_hash([5, 9, 14], seed=seed) for seed in range(8)}
        assert len(values) > 1

    def test_shard_of_respects_count(self, govtrack):
        from repro.index.labels import LabelInterner
        from repro.paths.extraction import extract_paths

        interner = LabelInterner()
        for path in extract_paths(govtrack):
            assert shard_of(path, interner, 1) == 0
            assert 0 <= shard_of(path, interner, 4) < 4


# -- build / open / layout ----------------------------------------------------


@pytest.fixture(scope="module")
def sharded_dir(tmp_path_factory):
    from repro.datasets.govtrack import govtrack_graph

    directory = str(tmp_path_factory.mktemp("shards") / "gov3")
    index, _ = build_sharded_index(govtrack_graph(), directory, 3)
    index.close()
    return directory


class TestLayout:
    def test_manifest_and_shard_dirs(self, sharded_dir):
        assert is_sharded_dir(sharded_dir)
        with open(os.path.join(sharded_dir, "manifest.json")) as handle:
            manifest = json.load(handle)
        assert manifest["kind"] == "sharded"
        assert manifest["shards"] == 3
        assert manifest["epochs"] == [0, 0, 0]
        assert len(manifest["gids"]) == 3
        for shard_no in range(3):
            shard = PathIndex.open(
                os.path.join(sharded_dir, f"shard-{shard_no:02d}"))
            try:
                assert shard.path_count == len(manifest["gids"][shard_no])
            finally:
                shard.close()

    def test_plain_dir_is_not_sharded(self, tmp_path, govtrack):
        plain = str(tmp_path / "plain")
        index, _ = build_index(govtrack, plain)
        index.close()
        assert not is_sharded_dir(plain)

    def test_gid_surface_matches_unsharded(self, tmp_path, govtrack,
                                           sharded_dir):
        plain_dir = str(tmp_path / "plain")
        plain, _ = build_index(govtrack, plain_dir)
        sharded = ShardedIndex.open(sharded_dir)
        try:
            assert sharded.path_count == plain.path_count
            plain_paths = [plain.path_at(offset).text()
                           for offset in plain.all_offsets()]
            sharded_paths = [sharded.path_at(gid).text()
                             for gid in sharded.all_offsets()]
            assert sharded_paths == plain_paths
            for label in list(plain._sink_index._exact)[:20]:
                want = [plain.path_at(o).text()
                        for o in plain.offsets_with_sink(label)]
                got = [sharded.path_at(g).text()
                       for g in sharded.offsets_with_sink(label)]
                assert got == want
        finally:
            plain.close()
            sharded.close()

    def test_gid_count_mismatch_raises(self, tmp_path, govtrack):
        directory = str(tmp_path / "broken")
        index, _ = build_sharded_index(govtrack, directory, 2)
        index.close()
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["gids"][0] = manifest["gids"][0][:-1]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(IndexCorruptError):
            ShardedIndex.open(directory)

    def test_truncated_manifest_raises(self, tmp_path, govtrack):
        directory = str(tmp_path / "torn")
        index, _ = build_sharded_index(govtrack, directory, 2)
        index.close()
        with open(os.path.join(directory, "manifest.json"), "w") as handle:
            handle.write('{"version": 1, "kind": "sh')
        with pytest.raises(IndexCorruptError):
            ShardedIndex.open(directory)


# -- ranking determinism ------------------------------------------------------


@pytest.fixture(scope="module")
def lubm_layouts(tmp_path_factory):
    """LUBM 800 stored unsharded and at 2/4 shards, plus the graph."""
    graph = dataset("lubm").build(800, seed=0)
    base = tmp_path_factory.mktemp("lubm-layouts")
    plain_dir = str(base / "plain")
    index, _ = build_index(graph, plain_dir)
    index.close()
    dirs = {0: plain_dir}
    for shards in (2, 4):
        directory = str(base / f"s{shards}")
        sharded, _ = build_sharded_index(graph, directory, shards)
        sharded.close()
        dirs[shards] = directory
    return dirs


@pytest.fixture(scope="module")
def lubm_query_graphs():
    return [spec.graph for spec in lubm_queries()
            if spec.qid in ("Q1", "Q2", "Q7")]


class TestRankingDeterminism:
    def test_bit_identical_rankings(self, lubm_layouts, lubm_query_graphs):
        engines = {shards: SamaEngine.open(path,
                                           config=EngineConfig(workers=4))
                   for shards, path in lubm_layouts.items()}
        try:
            for query in lubm_query_graphs:
                want = ranking(engines[0].query(query, k=10))
                for shards in (2, 4):
                    assert ranking(engines[shards].query(query, k=10)) == want
        finally:
            for engine in engines.values():
                engine.close()

    def test_bit_identical_under_candidate_budget(self, lubm_layouts,
                                                  lubm_query_graphs):
        engines = {shards: SamaEngine.open(path,
                                           config=EngineConfig(workers=4))
                   for shards, path in lubm_layouts.items()}
        try:
            for query in lubm_query_graphs:
                for cap in (64, 300):
                    want = ranking(engines[0].query(
                        query, k=10, budget=Budget(max_candidates=cap)))
                    for shards in (2, 4):
                        got = ranking(engines[shards].query(
                            query, k=10, budget=Budget(max_candidates=cap)))
                        assert got == want, (cap, shards)
        finally:
            for engine in engines.values():
                engine.close()

    def test_scatter_path_matches_serial_clusters(self, lubm_layouts,
                                                  lubm_query_graphs):
        """Force every cluster through scatter-gather and compare the
        entry sequences (score + path text) with the serial engine."""
        plain = SamaEngine.open(lubm_layouts[0])
        sharded = SamaEngine.open(lubm_layouts[4])
        try:
            with ThreadPoolExecutor(max_workers=4) as executor:
                for query in lubm_query_graphs:
                    prepared_plain = plain.prepare(query)
                    prepared_sharded = sharded.prepare(query)
                    serial = build_clusters(
                        prepared_plain, plain.index,
                        matcher=plain.matcher, memo=AlignmentMemo())
                    scattered = build_clusters(
                        prepared_sharded, sharded.index,
                        matcher=sharded.matcher, memo=AlignmentMemo(),
                        executor=executor, scatter_threshold=1)
                    assert len(serial) == len(scattered)
                    for want, got in zip(serial, scattered):
                        assert ([(e.score, e.path.text())
                                 for e in got.entries]
                                == [(e.score, e.path.text())
                                    for e in want.entries])
        finally:
            plain.close()
            sharded.close()

    def test_deadline_corner_cases_stay_identical(self, lubm_layouts,
                                                  lubm_query_graphs):
        """Deadline trips mid-flight are timing-dependent, but the two
        deterministic corners — an already-expired deadline and one
        that can never trip — must agree at every shard count."""
        engines = {shards: SamaEngine.open(path,
                                           config=EngineConfig(workers=4))
                   for shards, path in lubm_layouts.items()}
        try:
            for query in lubm_query_graphs:
                for deadline_ms in (0.0, 3_600_000.0):
                    want = engines[0].query(query, k=10,
                                            deadline_ms=deadline_ms,
                                            on_budget="partial")
                    for shards in (2, 4):
                        got = engines[shards].query(query, k=10,
                                                    deadline_ms=deadline_ms,
                                                    on_budget="partial")
                        assert ranking(got) == ranking(want)
                        assert got.complete == want.complete
        finally:
            for engine in engines.values():
                engine.close()


# -- hypothesis: arbitrary graphs, arbitrary shard counts ---------------------


_labels = st.sampled_from(["p", "q", "r", "s"])


@st.composite
def small_graphs(draw):
    from repro.rdf.graph import DataGraph

    node_count = draw(st.integers(min_value=2, max_value=7))
    nodes = [f"http://x/n{i}" for i in range(node_count)]
    edge_count = draw(st.integers(min_value=1, max_value=10))
    triples = []
    for _ in range(edge_count):
        src = draw(st.integers(0, node_count - 1))
        dst = draw(st.integers(0, node_count - 1))
        if src == dst:
            continue
        triples.append((nodes[src], "http://x/e" + draw(_labels),
                        nodes[dst]))
    graph = DataGraph()
    graph.add_triples(triples)
    return graph


@given(small_graphs(), st.sampled_from([1, 2, 4, 7]))
@settings(max_examples=20, deadline=None)
def test_property_sharding_preserves_rankings(tmp_path_factory, graph,
                                              shards):
    """At N ∈ {1, 2, 4, 7} shards: same stored paths in the same global
    order, and byte-identical top-k answers for a query over the graph's
    own labels."""
    if graph.edge_count() == 0:
        return
    base = tmp_path_factory.mktemp("prop")
    plain, _ = build_index(graph, str(base / "plain"))
    sharded, _ = build_sharded_index(graph, str(base / "sharded"), shards)
    try:
        assert ([sharded.path_at(g).text() for g in sharded.all_offsets()]
                == [plain.path_at(o).text() for o in plain.all_offsets()])
        subject, predicate, obj = next(iter(graph.triples()))
        query = (f"SELECT ?x WHERE {{ ?x <{predicate}> <{obj}> . }}")
        plain_engine = SamaEngine(plain, config=EngineConfig(workers=2))
        sharded_engine = SamaEngine(sharded, config=EngineConfig(workers=2))
        assert (ranking(sharded_engine.query(query, k=5))
                == ranking(plain_engine.query(query, k=5)))
        # The already-expired-deadline corner degrades identically.
        assert (ranking(sharded_engine.query(query, k=5, deadline_ms=0.0,
                                             on_budget="partial"))
                == ranking(plain_engine.query(query, k=5, deadline_ms=0.0,
                                              on_budget="partial")))
    finally:
        plain.close()
        sharded.close()


# -- reshard ------------------------------------------------------------------


class TestReshard:
    def test_in_place_preserves_order_and_rankings(self, tmp_path, govtrack,
                                                   q1):
        directory = str(tmp_path / "idx")
        index, _ = build_sharded_index(govtrack, directory, 3)
        before_paths = [index.path_at(g).text()
                        for g in index.all_offsets()]
        before = ranking(SamaEngine(index).query(q1, k=5))
        index.close()

        resharded = reshard(directory, 2)
        try:
            assert resharded.shard_count == 2
            assert ([resharded.path_at(g).text()
                     for g in resharded.all_offsets()] == before_paths)
            assert ranking(SamaEngine(resharded).query(q1, k=5)) == before
        finally:
            resharded.close()
        assert is_sharded_dir(directory)

    def test_plain_to_sharded_via_output(self, tmp_path, govtrack, q1):
        plain_dir = str(tmp_path / "plain")
        index, _ = build_index(govtrack, plain_dir)
        before = ranking(SamaEngine(index).query(q1, k=5))
        index.close()

        out = str(tmp_path / "out")
        resharded = reshard(plain_dir, 4, output=out)
        try:
            assert resharded.shard_count == 4
            assert ranking(SamaEngine(resharded).query(q1, k=5)) == before
        finally:
            resharded.close()
        assert not is_sharded_dir(plain_dir)  # source untouched


# -- incremental epoch vector -------------------------------------------------


class TestIncrementalEpochVector:
    def test_update_bumps_only_touched_shards(self, tmp_path, govtrack):
        index = IncrementalIndex(govtrack.copy(), str(tmp_path / "inc"),
                                 shards=4)
        try:
            assert index.epoch == 0
            assert index.epoch_vector == (0, 0, 0, 0)
            index.add_triple("http://example.org/govtrack/NewPerson",
                             "http://example.org/govtrack/sponsor",
                             "http://example.org/govtrack/B1432")
            vector = index.epoch_vector
            assert index.epoch == sum(vector) > 0
            assert any(component == 0 for component in vector), \
                "a single-path insert must not bump every shard"
        finally:
            index.close()

    def test_epoch_stays_monotone(self, tmp_path, govtrack):
        index = IncrementalIndex(govtrack.copy(), str(tmp_path / "inc"),
                                 shards=3)
        try:
            seen = [index.epoch]
            index.add_triple("http://x/a", "http://x/p", "http://x/b")
            seen.append(index.epoch)
            index.remove_triple("http://x/a", "http://x/p", "http://x/b")
            seen.append(index.epoch)
            assert seen == sorted(seen)
            assert len(set(seen)) == len(seen)
        finally:
            index.close()

    def test_compact_bumps_every_shard(self, tmp_path, govtrack):
        index = IncrementalIndex(govtrack.copy(), str(tmp_path / "inc"),
                                 shards=3)
        try:
            index.add_triple("http://x/a", "http://x/p", "http://x/b")
            before = index.epoch_vector
            fresh = index.compact(str(tmp_path / "fresh"))
            try:
                assert fresh.epoch_vector == tuple(component + 1
                                                   for component in before)
            finally:
                fresh.close()
        finally:
            index.close()


# -- serving: composite epoch key ---------------------------------------------


class TestServingShardedEpochs:
    def test_stats_expose_shards_and_epochs(self, tmp_path, govtrack, q1):
        index = IncrementalIndex(govtrack.copy(), str(tmp_path / "inc"),
                                 shards=2)
        service = ServingEngine(SamaEngine(index),
                                ServingConfig(workers=2))
        try:
            payload = service.stats_payload()
            assert payload["shards"] == 2
            assert payload["epochs"] == [0, 0]
            index.add_triple("http://example.org/govtrack/NewPerson",
                             "http://example.org/govtrack/sponsor",
                             "http://example.org/govtrack/B1432")
            payload = service.stats_payload()
            assert payload["epochs"] == list(index.epoch_vector)
            assert payload["epoch"] == sum(payload["epochs"])
            metrics = service.render_metrics()
            assert "sama_index_shard_epoch" in metrics
            assert 'shard="0"' in metrics
        finally:
            service.close()

    def test_composite_key_invalidates_on_shard_bump(self, tmp_path,
                                                     govtrack, q1):
        index = IncrementalIndex(govtrack.copy(), str(tmp_path / "inc"),
                                 shards=2)
        service = ServingEngine(SamaEngine(index),
                                ServingConfig(workers=2))
        try:
            assert service.epoch_key == (0, 0)
            service.query(q1, k=5)
            assert service.query(q1, k=5).cached is True
            for entry in service.cache._entries.values():
                assert entry.epoch == (0, 0)

            index.add_triple("http://example.org/govtrack/NewPerson",
                             "http://example.org/govtrack/sponsor",
                             "http://example.org/govtrack/B1432")
            assert service.epoch_key == index.epoch_vector != (0, 0)
            after = service.query(q1, k=5)
            assert after.cached is False
            # The stale vector-keyed entry was physically dropped.
            for entry in service.cache._entries.values():
                assert entry.epoch == service.epoch_key
        finally:
            service.close()

    def test_unsharded_epoch_key_stays_int(self, tmp_path, govtrack):
        index = IncrementalIndex(govtrack.copy(), str(tmp_path / "inc"))
        service = ServingEngine(SamaEngine(index), ServingConfig(workers=1))
        try:
            assert isinstance(service.epoch_key, int)
        finally:
            service.close()

    def test_sharded_index_metrics_have_shard_labels(self, tmp_path,
                                                     govtrack, q1):
        directory = str(tmp_path / "gov2")
        index, _ = build_sharded_index(govtrack, directory, 2)
        index.close()
        engine = SamaEngine.open(directory)
        service = ServingEngine(engine, ServingConfig(workers=1))
        try:
            service.query(q1, k=3)
            metrics = service.render_metrics()
            assert "sama_shard_record_decodes_total" in metrics
            assert 'shard="1"' in metrics
        finally:
            service.close()
