"""Two-stage retrieval (``repro.sketch``): signatures, store, filter.

The load-bearing claims, in test order:

- minhash signatures are a pure function of (seed, id set) — in this
  process and in a freshly spawned one — and the band/bucket machinery
  agrees with a brute-force Jaccard on the obvious cases;
- **safe mode never changes a ranking**: for random path corpora and
  random queries, the candidates it prunes are provably outside the
  kept cluster, so rescoring the survivors reproduces the exhaustive
  top-``limit`` bit for bit (the hypothesis property at the heart of
  this file);
- the persisted ``sketch.bin`` round-trips exactly, and a stale epoch,
  corrupt bytes, or a missing file all degrade to exhaustive recall
  instead of wrong candidates;
- compaction invalidates persisted sketches; quarantined shards are
  skipped at build and pass through at query time;
- the serving cache key separates retrieval modes;
- the ``sama index sketch`` CLI verb builds real files.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.engine.clustering import _prefix_at_anchor
from repro.engine.sama import EngineConfig, SamaEngine
from repro.index.incremental import IncrementalIndex, compact_directory
from repro.index.labels import LabelInterner
from repro.paths.alignment import align, exact_match
from repro.paths.model import Path
from repro.rdf.graph import DataGraph
from repro.rdf.terms import URI, Variable
from repro.scoring.quality import lambda_cost
from repro.scoring.weights import PAPER_WEIGHTS
from repro.serving.canonical import cache_key
from repro.sketch import (APPROX_MIN_KEEP, SketchIndex, SketchParams,
                          TwoStageFilter, build_sketches, coefficients,
                          estimate_jaccard, invalidate_sketches,
                          load_shard_sketch, load_sketches, signature,
                          sketch_path)
from repro.sketch.store import ShardSketch

PARAMS = SketchParams()


def uri(name):
    return URI(f"http://x/{name}")


# ---------------------------------------------------------------------------
# minhash: seeded determinism, cross-process consistency, estimation


class TestMinhash:
    def test_signature_deterministic_for_seed(self):
        ids = {3, 17, 4242, 9}
        coeffs = coefficients(PARAMS)
        again = coefficients(SketchParams())
        assert signature(ids, coeffs) == signature(ids, again)
        other = coefficients(SketchParams(seed=7))
        assert signature(ids, coeffs) != signature(ids, other)

    def test_identical_sets_estimate_one(self):
        coeffs = coefficients(PARAMS)
        sig = signature({1, 2, 3}, coeffs)
        assert estimate_jaccard(sig, sig) == 1.0

    def test_empty_set_collides_only_with_empty(self):
        coeffs = coefficients(PARAMS)
        empty = signature((), coeffs)
        assert estimate_jaccard(empty, empty) == 1.0
        assert estimate_jaccard(empty, signature({5}, coeffs)) == 0.0

    @given(st.sets(st.integers(min_value=0, max_value=10_000),
                   min_size=1, max_size=30),
           st.sets(st.integers(min_value=0, max_value=10_000),
                   min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_estimator_is_seeded_and_sane(self, set_a, set_b):
        """Same seed ⇒ same estimate on every run; equal sets estimate
        1.0 and the estimate always lands in [0, 1]."""
        coeffs = coefficients(PARAMS)
        sig_a = signature(set_a, coeffs)
        sig_b = signature(set_b, coeffs)
        estimate = estimate_jaccard(sig_a, sig_b)
        assert 0.0 <= estimate <= 1.0
        assert estimate == estimate_jaccard(signature(set_a, coeffs),
                                            signature(set_b, coeffs))
        if set_a == set_b:
            assert estimate == 1.0

    def test_signature_consistent_across_processes(self):
        """A fresh interpreter (spawned, no shared state) computes the
        byte-identical signature for the same seed and id set — the
        property that lets procs-mode workers and the coordinator
        agree on persisted sketches."""
        ids = sorted({12, 99, 406, 777, 13_031})
        coeffs = coefficients(PARAMS)
        local = signature(ids, coeffs)
        script = textwrap.dedent("""
            import json, sys
            from repro.sketch import SketchParams, coefficients, signature
            ids = json.loads(sys.argv[1])
            sig = signature(ids, coefficients(SketchParams()))
            print(json.dumps(list(sig)))
        """)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ, PYTHONPATH=os.path.abspath(src))
        out = subprocess.run(
            [sys.executable, "-c", script, json.dumps(ids)],
            capture_output=True, text=True, env=env, check=True)
        assert tuple(json.loads(out.stdout)) == local

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SketchParams(num_perm=10, bands=3)
        with pytest.raises(ValueError):
            SketchParams(bands=0)


# ---------------------------------------------------------------------------
# safe mode: the bit-identity property


class _MemoryIndex:
    """The minimal surface ShardSketch.from_index / TwoStageFilter need."""

    epoch = 0

    def __init__(self, paths):
        self.interner = LabelInterner()
        self._paths = list(paths)
        for path in self._paths:
            for node in path.nodes:
                self.interner.intern(node)
            for edge in path.edges:
                self.interner.intern(edge)

    def all_offsets(self):
        return list(range(len(self._paths)))

    def path_at(self, offset):
        return self._paths[offset]


_labels = st.sampled_from("abcdefgh")


@st.composite
def _ground_paths(draw, max_len=5):
    length = draw(st.integers(min_value=1, max_value=max_len))
    nodes = [uri(draw(_labels)) for _ in range(length)]
    edges = [uri("e" + draw(_labels)) for _ in range(length - 1)]
    return Path(nodes, edges)


@st.composite
def _query_paths(draw, max_len=5):
    length = draw(st.integers(min_value=1, max_value=max_len))
    nodes = [Variable(f"v{i}") if draw(st.booleans())
             else uri(draw(_labels)) for i in range(length)]
    edges = [uri("e" + draw(_labels)) for _ in range(length - 1)]
    return Path(nodes, edges)


def _exhaustive(paths, query, trim, anchor):
    """Brute force: trim (optionally), score, sort by the engine's
    deterministic ``(λ, gid)`` key."""
    scored = []
    for gid, path in enumerate(paths):
        candidate = (_prefix_at_anchor(path, anchor, exact_match)
                     if trim else path)
        if candidate is None:
            continue
        cost = lambda_cost(align(candidate, query, transcript=False),
                           PAPER_WEIGHTS)
        scored.append((cost, gid))
    scored.sort()
    return scored


def _safe_filter(index, limit):
    sketch = ShardSketch.from_index(index, PARAMS, 0)
    sketches = SketchIndex([sketch], lambda gid: (0, gid))
    return TwoStageFilter(index, sketches, exact_match, PAPER_WEIGHTS,
                          "safe", limit)


class TestSafeModeProperty:
    @given(st.lists(_ground_paths(), min_size=1, max_size=18),
           _query_paths(),
           st.integers(min_value=1, max_value=4),
           st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_safe_pruning_preserves_topk_bit_identical(
            self, paths, query, limit, trim):
        """The exhaustive top-``limit`` (by the engine's (λ, gid) sort
        key) survives safe-mode filtering untouched: rescoring only
        the survivors yields the identical truncated list."""
        anchor = query.sink if trim and not isinstance(
            query.sink, Variable) else None
        trim = anchor is not None
        index = _MemoryIndex(paths)
        kept = set(_safe_filter(index, limit)(
            query, index.all_offsets(), trim, anchor))
        exhaustive = _exhaustive(paths, query, trim, anchor)
        survivors = [item for item in exhaustive if item[1] in kept]
        assert survivors[:limit] == exhaustive[:limit]

    @given(st.lists(_ground_paths(), min_size=1, max_size=12),
           _query_paths())
    @settings(max_examples=60, deadline=None)
    def test_unlimited_safe_mode_keeps_every_trim_survivor(
            self, paths, query):
        """With no cluster cap there is no truncation, so safe mode may
        drop only candidates the anchor trim would drop anyway."""
        index = _MemoryIndex(paths)
        kept = _safe_filter(index, None)(
            query, index.all_offsets(), False, None)
        assert kept == index.all_offsets()


class TestSafeModeEngine:
    """End-to-end: a real engine over a real index, safe vs exhaustive."""

    QUERY = """
        PREFIX gov: <http://example.org/govtrack/>
        SELECT ?v1 ?v2 ?v3 WHERE {
            gov:CarlaBunes gov:sponsor ?v1 .
            ?v1 gov:aTo ?v2 .
            ?v2 gov:subject "Health Care" .
            ?v3 gov:sponsor ?v2 .
            ?v3 gov:gender "Male" .
        }"""

    @staticmethod
    def _ranking(engine, query, k=6):
        return [(round(answer.score, 9), str(answer))
                for answer in engine.query(query, k=k)]

    @pytest.fixture(scope="class")
    def indexed(self, tmp_path_factory):
        from repro.datasets.govtrack import govtrack_graph

        directory = str(tmp_path_factory.mktemp("sketch") / "idx")
        engine = SamaEngine.from_graph(govtrack_graph(),
                                       directory=directory)
        build_sketches(engine.index)
        engine.close()
        return directory

    @pytest.mark.parametrize("max_cluster_size", [1, 2, 3, 4000])
    def test_rankings_bit_identical(self, indexed, max_cluster_size):
        exhaustive = SamaEngine.open(indexed, config=EngineConfig(
            max_cluster_size=max_cluster_size))
        staged = SamaEngine.open(indexed, config=EngineConfig(
            two_stage="safe", max_cluster_size=max_cluster_size))
        try:
            assert staged.sketch_filter() is not None
            assert (self._ranking(staged, self.QUERY)
                    == self._ranking(exhaustive, self.QUERY))
        finally:
            exhaustive.close()
            staged.close()

    def test_counters_and_span_flow_to_registry(self, indexed):
        from repro.obs import get_registry

        registry = get_registry()
        before = registry.snapshot().get("sama_sketch_candidates_total", 0.0)
        engine = SamaEngine.open(indexed,
                                 config=EngineConfig(two_stage="safe"))
        try:
            engine.query(self.QUERY, k=3)
        finally:
            engine.close()
        snapshot = registry.snapshot()
        assert snapshot.get("sama_sketch_candidates_total", 0.0) > before
        assert "sama_sketch_pruned_total" in snapshot

    def test_invalid_mode_rejected(self, indexed):
        with pytest.raises(ValueError):
            SamaEngine.open(indexed,
                            config=EngineConfig(two_stage="banana"))


class TestSafeModeSharded:
    """Safe mode over a sharded index, including a quarantined shard."""

    def _workload(self):
        triples = []
        for i in range(40):
            triples.append((f"http://x/s{i}", "http://x/likes",
                            f"http://x/m{i % 7}"))
            triples.append((f"http://x/m{i % 7}", "http://x/type",
                            "http://x/Movie"))
        return DataGraph.from_triples(triples)

    QUERY = """
        SELECT ?s WHERE {
            ?s <http://x/likes> ?m .
            ?m <http://x/type> <http://x/Movie> .
        }"""

    @pytest.fixture()
    def sharded_dir(self, tmp_path):
        from repro.index.sharded import build_sharded_index

        directory = str(tmp_path / "shards")
        index, _ = build_sharded_index(self._workload(), directory, 2)
        build_sketches(index)
        index.close()
        return directory

    def test_sharded_safe_identical(self, sharded_dir):
        exhaustive = SamaEngine.open(sharded_dir, config=EngineConfig(
            max_cluster_size=5))
        staged = SamaEngine.open(sharded_dir, config=EngineConfig(
            two_stage="safe", max_cluster_size=5))
        try:
            assert staged.sketch_filter() is not None
            want = [(round(a.score, 9), str(a))
                    for a in exhaustive.query(self.QUERY, k=8)]
            got = [(round(a.score, 9), str(a))
                   for a in staged.query(self.QUERY, k=8)]
            assert got == want
        finally:
            exhaustive.close()
            staged.close()

    def test_quarantined_shard_skipped_and_passed_through(self, tmp_path):
        from repro.index.sharded import build_sharded_index, shard_dir

        directory = str(tmp_path / "shards")
        index, _ = build_sharded_index(self._workload(), directory, 2)
        index.close()
        # Damage shard 1, reopen with quarantine, then sketch: only the
        # healthy shard gets a file and queries still answer (degraded)
        # identically with and without the filter.
        log = os.path.join(shard_dir(directory, 1), "paths.log")
        with open(log, "r+b") as handle:
            handle.write(b"\x00" * 64)
        exhaustive = SamaEngine.open(directory, recover=True)
        build_sketches(exhaustive.index)
        assert not os.path.exists(
            sketch_path(shard_dir(directory, 1)))
        staged = SamaEngine.open(directory, recover=True, config=EngineConfig(
            two_stage="safe"))
        try:
            assert staged.sketch_filter() is not None
            want = [(round(a.score, 9), str(a))
                    for a in exhaustive.query(self.QUERY, k=8)]
            got = [(round(a.score, 9), str(a))
                   for a in staged.query(self.QUERY, k=8)]
            assert got == want
        finally:
            exhaustive.close()
            staged.close()


# ---------------------------------------------------------------------------
# the store: round-trip, stale epoch, corruption, invalidation


class TestStore:
    def _index(self):
        return _MemoryIndex([
            Path([uri("a"), uri("b"), uri("c")],
                 [uri("p"), uri("q")]),
            Path([uri("b"), uri("c")], [uri("q")]),
            Path([uri("z")], []),
        ])

    def test_round_trip(self, tmp_path):
        sketch = ShardSketch.from_index(self._index(), PARAMS, epoch=3)
        target = str(tmp_path / "sketch.bin")
        sketch.save(target)
        loaded = ShardSketch.load(target)
        assert loaded.params == sketch.params
        assert loaded.epoch == 3
        assert loaded.offsets == sketch.offsets
        assert list(loaded.lengths) == list(sketch.lengths)
        assert loaded.node_sets == sketch.node_sets
        assert loaded.edge_sets == sketch.edge_sets
        assert loaded.signatures == sketch.signatures

    def test_stale_epoch_loads_as_none(self, tmp_path):
        sketch = ShardSketch.from_index(self._index(), PARAMS, epoch=3)
        target = str(tmp_path / "sketch.bin")
        sketch.save(target)
        assert load_shard_sketch(str(tmp_path), expected_epoch=3) is not None
        assert load_shard_sketch(str(tmp_path), expected_epoch=4) is None

    def test_corrupt_and_missing_load_as_none(self, tmp_path):
        assert load_shard_sketch(str(tmp_path), expected_epoch=0) is None
        target = str(tmp_path / "sketch.bin")
        with open(target, "wb") as handle:
            handle.write(b"not a sketch at all")
        assert load_shard_sketch(str(tmp_path), expected_epoch=0) is None

    def test_stale_engine_falls_back_to_exhaustive(self, tmp_path):
        """A sketch built against the wrong epoch is ignored wholesale:
        the engine reports no filter and answers exhaustively."""
        from repro.datasets.govtrack import govtrack_graph

        directory = str(tmp_path / "idx")
        engine = SamaEngine.from_graph(govtrack_graph(),
                                       directory=directory)
        stale = ShardSketch.from_index(engine.index, PARAMS, epoch=99)
        stale.save(sketch_path(directory))
        engine.close()
        staged = SamaEngine.open(directory,
                                 config=EngineConfig(two_stage="safe"))
        try:
            assert load_sketches(staged.index) is None
            assert staged.sketch_filter() is None
            assert staged.query(TestSafeModeEngine.QUERY, k=3)
        finally:
            staged.close()

    def test_compaction_invalidates_sketches(self, tmp_path):
        graph = DataGraph.from_triples([
            ("http://x/a", "http://x/p", "http://x/b"),
            ("http://x/b", "http://x/p", "http://x/c"),
        ])
        directory = str(tmp_path / "inc")
        index = IncrementalIndex(graph, directory)
        index.remove_triple("http://x/b", "http://x/p", "http://x/c")
        index.save_manifest()
        index.close()
        with open(sketch_path(directory), "wb") as handle:
            handle.write(b"doomed")
        report = compact_directory(directory)
        assert report.sketches_invalidated == 1
        assert not os.path.exists(sketch_path(directory))

    def test_incremental_update_orphans_quotients(self, tmp_path):
        """An incremental round that merely *adds a member to an
        existing equivalence class* still bumps the epoch, so a
        quotient keyed to the old epoch loads as ``None`` (exhaustive
        fallback) until rebuilt against the new one — same contract as
        the stale-sketch tests above."""
        from repro.quotient import load_shard_quotient, quotient_path
        from repro.quotient.store import ShardQuotient

        graph = DataGraph.from_triples([
            ("http://x/s1", "http://x/memberOf", "http://x/d1"),
            ("http://x/s2", "http://x/memberOf", "http://x/d2"),
        ])
        directory = str(tmp_path / "inc")
        index = IncrementalIndex(graph, directory)

        def snapshot():
            return _MemoryIndex([index.path_at(offset)
                                 for offset in index.all_offsets()])

        before = ShardQuotient.from_index(snapshot(), index.epoch)
        before.save(quotient_path(directory))
        assert load_shard_quotient(directory, index.epoch) is not None

        old_epoch = index.epoch
        index.add_triple("http://x/s3", "http://x/memberOf", "http://x/d3")
        assert index.epoch > old_epoch
        assert load_shard_quotient(directory, index.epoch) is None

        rebuilt = ShardQuotient.from_index(snapshot(), index.epoch)
        rebuilt.save(quotient_path(directory))
        loaded = load_shard_quotient(directory, index.epoch)
        assert loaded is not None
        assert len(loaded) > len(before)
        assert loaded.class_count == before.class_count
        index.close()

    def test_invalidate_sweeps_shard_dirs(self, tmp_path):
        os.makedirs(tmp_path / "shard-00")
        for target in (tmp_path / "sketch.bin",
                       tmp_path / "shard-00" / "sketch.bin"):
            with open(target, "wb") as handle:
                handle.write(b"x")
        assert invalidate_sketches(str(tmp_path)) == 2


# ---------------------------------------------------------------------------
# serving + CLI surface


class TestSurface:
    def test_cache_key_varies_with_mode(self):
        query = "SELECT ?s WHERE { ?s <http://x/p> <http://x/o> . }"
        keys = {cache_key(query, 5, 1, mode)
                for mode in ("off", "safe", "approx")}
        assert len(keys) == 3
        # The default keeps the historical positional call working.
        assert cache_key(query, 5, 1) == cache_key(query, 5, 1, "off")

    def test_cli_index_sketch_builds_files(self, tmp_path, capsys):
        data = tmp_path / "data.nt"
        data.write_text(
            "<http://x/a> <http://x/p> <http://x/b> .\n"
            "<http://x/b> <http://x/p> <http://x/c> .\n")
        directory = str(tmp_path / "idx")
        assert main(["index", "build", str(data), directory]) == 0
        assert main(["index", "sketch", directory]) == 0
        assert os.path.exists(sketch_path(directory))
        out = capsys.readouterr().out
        assert "sketched" in out
        loaded = load_shard_sketch(directory, expected_epoch=0)
        assert loaded is not None and len(loaded) > 0

    def test_cli_query_two_stage(self, tmp_path):
        data = tmp_path / "data.nt"
        data.write_text(
            "<http://x/a> <http://x/p> <http://x/b> .\n"
            "<http://x/b> <http://x/p> <http://x/c> .\n")
        directory = str(tmp_path / "idx")
        assert main(["index", "build", str(data), directory]) == 0
        assert main(["index", "sketch", directory]) == 0
        code = main(["query", directory, "--two-stage", "safe", "-e",
                     "SELECT ?s WHERE { ?s <http://x/p> <http://x/b> . }"])
        assert code == 0


# ---------------------------------------------------------------------------
# approximate mode: sanity (the recall *number* is gated by
# benchmarks/bench_twostage.py; here we pin the deterministic contracts)


class TestApproxMode:
    @given(st.lists(_ground_paths(), min_size=1, max_size=15),
           _query_paths())
    @settings(max_examples=60, deadline=None)
    def test_approx_keeps_are_deterministic_and_bounded(self, paths, query):
        index = _MemoryIndex(paths)
        sketch = ShardSketch.from_index(index, PARAMS, 0)
        sketches = SketchIndex([sketch], lambda gid: (0, gid))
        judge = TwoStageFilter(index, sketches, exact_match, PAPER_WEIGHTS,
                               "approx", 4000, recall_target=0.95)
        offsets = index.all_offsets()
        kept = judge(query, offsets, False, None)
        assert kept == judge(query, offsets, False, None)
        assert set(kept) <= set(offsets)
        assert kept == sorted(kept)

    def test_keep_budget_scales_with_recall_target(self):
        index = _MemoryIndex([Path([uri("a")], [])])
        sketch = ShardSketch.from_index(index, PARAMS, 0)
        sketches = SketchIndex([sketch], lambda gid: (0, gid))
        judge = TwoStageFilter(index, sketches, exact_match, PAPER_WEIGHTS,
                               "approx", None, recall_target=0.95)
        assert judge.keep_budget() == 160
        judge.recall_target = 0.99
        assert judge.keep_budget() == 800    # half the miss rate ≈ 2x… x5
        judge.recall_target = 0.5
        assert judge.keep_budget() == APPROX_MIN_KEEP
        judge.recall_target = 1.0
        assert judge.keep_budget() is None   # degenerates to keep-all

    def test_approx_budget_cuts_in_gid_order_within_ties(self):
        """Candidates tied on LB survive in ascending-gid order — the
        exact scorer's own cost tie-break — so the survivors are the
        candidates exhaustive truncation would promote anyway."""
        paths = [Path([uri(f"n{i}")], []) for i in range(80)]
        index = _MemoryIndex(paths)
        sketch = ShardSketch.from_index(index, PARAMS, 0)
        sketches = SketchIndex([sketch], lambda gid: (0, gid))
        judge = TwoStageFilter(index, sketches, exact_match, PAPER_WEIGHTS,
                               "approx", None, recall_target=0.5)
        query = Path([uri("zzz")], [])
        kept = judge(query, index.all_offsets(), False, None)
        assert kept == list(range(APPROX_MIN_KEEP))

    def test_approx_floor_keeps_best_lower_bounds(self):
        """Small corpora are never starved: everything below the floor
        size survives regardless of how alien it looks."""
        paths = [Path([uri(f"n{i}")], []) for i in range(10)]
        index = _MemoryIndex(paths)
        sketch = ShardSketch.from_index(index, PARAMS, 0)
        sketches = SketchIndex([sketch], lambda gid: (0, gid))
        judge = TwoStageFilter(index, sketches, exact_match, PAPER_WEIGHTS,
                               "approx", 4000, recall_target=1.0)
        query = Path([uri("zzz")], [])
        kept = judge(query, index.all_offsets(), False, None)
        assert kept == index.all_offsets()
