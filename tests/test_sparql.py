"""Unit tests for the SPARQL BGP front-end."""

import pytest

from repro.rdf.sparql import (SparqlSyntaxError, parse_select, query_graph)
from repro.rdf.terms import Literal, URI, Variable
from repro.rdf.namespaces import RDF


BASIC = """
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?x ?y WHERE {
    ?x ub:advisor ?y .
    ?y ub:worksFor ub:Department0 .
}
"""


class TestProjection:
    def test_variables_parsed(self):
        q = parse_select(BASIC)
        assert q.variables == [Variable("x"), Variable("y")]
        assert not q.select_all

    def test_select_star(self):
        q = parse_select("SELECT * WHERE { ?s ?p ?o . }")
        assert q.select_all

    def test_distinct(self):
        q = parse_select("SELECT DISTINCT ?s WHERE { ?s ?p ?o . }")
        assert q.distinct

    def test_missing_projection_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_select("SELECT WHERE { ?s ?p ?o . }")


class TestPatterns:
    def test_prefix_expansion(self):
        q = parse_select(BASIC)
        predicates = {p.predicate for p in q.patterns}
        assert URI("http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor") \
            in predicates

    def test_undeclared_prefix_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_select("SELECT ?s WHERE { ?s nope:p ?o . }")

    def test_a_keyword_is_rdf_type(self):
        q = parse_select("SELECT ?s WHERE { ?s a <http://x/C> . }")
        assert q.patterns[0].predicate == RDF.type

    def test_semicolon_same_subject(self):
        q = parse_select("""
            SELECT ?s WHERE {
                ?s <http://x/p> ?a ;
                   <http://x/q> ?b .
            }""")
        assert len(q.patterns) == 2
        assert q.patterns[0].subject == q.patterns[1].subject

    def test_comma_same_predicate(self):
        q = parse_select("""
            SELECT ?s WHERE { ?s <http://x/p> ?a, ?b . }""")
        assert len(q.patterns) == 2
        assert q.patterns[0].predicate == q.patterns[1].predicate

    def test_dangling_semicolon_tolerated(self):
        q = parse_select("SELECT ?s WHERE { ?s <http://x/p> ?a ; . }")
        assert len(q.patterns) == 1

    def test_string_literal(self):
        q = parse_select('SELECT ?s WHERE { ?s <http://x/p> "Health Care" . }')
        assert q.patterns[0].object == Literal("Health Care")

    def test_language_tag(self):
        q = parse_select('SELECT ?s WHERE { ?s <http://x/p> "chat"@fr . }')
        assert q.patterns[0].object.language == "fr"

    def test_number_literal_typed(self):
        q = parse_select("SELECT ?s WHERE { ?s <http://x/p> 42 . }")
        assert q.patterns[0].object.datatype.value.endswith("integer")
        q = parse_select("SELECT ?s WHERE { ?s <http://x/p> 3.14 . }")
        assert q.patterns[0].object.datatype.value.endswith("decimal")

    def test_boolean_literal(self):
        q = parse_select("SELECT ?s WHERE { ?s <http://x/p> true . }")
        assert q.patterns[0].object.datatype.value.endswith("boolean")

    def test_anonymous_blank_node(self):
        q = parse_select("SELECT ?s WHERE { ?s <http://x/p> [] . }")
        from repro.rdf.terms import BlankNode
        assert isinstance(q.patterns[0].object, BlankNode)

    def test_variable_predicate(self):
        q = parse_select("SELECT ?s WHERE { ?s ?rel <http://x/o> . }")
        assert q.patterns[0].predicate == Variable("rel")

    def test_empty_where_raises(self):
        with pytest.raises(SparqlSyntaxError):
            parse_select("SELECT ?s WHERE { }")

    def test_limit_offset_ignored(self):
        q = parse_select(
            "SELECT ?s WHERE { ?s ?p ?o . } LIMIT 5 OFFSET 10")
        assert len(q.patterns) == 1


class TestUnsupported:
    @pytest.mark.parametrize("keyword", ["OPTIONAL", "FILTER", "UNION"])
    def test_fragment_violations_rejected(self, keyword):
        with pytest.raises(SparqlSyntaxError, match=keyword):
            parse_select(f"""
                SELECT ?s WHERE {{
                    ?s <http://x/p> ?o .
                    {keyword} {{ ?s <http://x/q> ?o2 . }}
                }}""")

    def test_construct_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_select("CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }")


class TestGraphMaterialisation:
    def test_query_graph(self):
        graph = query_graph(BASIC, name="test")
        assert graph.name == "test"
        assert graph.node_count() == 3
        assert graph.edge_count() == 2

    def test_all_variables(self):
        q = parse_select(BASIC)
        assert q.all_variables() == {Variable("x"), Variable("y")}

    def test_shared_variable_merges_nodes(self):
        graph = query_graph("""
            SELECT ?s WHERE {
                ?s <http://x/p> ?m .
                ?m <http://x/q> ?o .
            }""")
        assert graph.node_count() == 3


class TestParserProperty:
    """Round-trip property: rendered BGPs parse back to themselves."""

    def test_random_bgps_roundtrip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.rdf.terms import Literal, URI, Variable
        from repro.rdf.triples import Triple

        subjects = st.one_of(
            st.sampled_from([Variable("s"), Variable("x"), Variable("y")]),
            st.sampled_from([URI("http://x/a"), URI("http://x/b")]))
        predicates = st.one_of(
            st.sampled_from([Variable("p"), Variable("rel")]),
            st.sampled_from([URI("http://x/knows"), URI("http://x/likes")]))
        objects = st.one_of(
            subjects,
            st.sampled_from([Literal("plain value"),
                             Literal("tag", language="en"),
                             Literal("5", datatype=URI(
                                 "http://www.w3.org/2001/XMLSchema#integer"))]))
        triples = st.lists(
            st.builds(Triple, subjects, predicates, objects),
            min_size=1, max_size=6, unique=True)

        @given(triples)
        @settings(max_examples=120, deadline=None)
        def check(patterns):
            body = " ".join(
                f"{t.subject.n3()} {t.predicate.n3()} {t.object.n3()} ."
                for t in patterns)
            text = f"SELECT * WHERE {{ {body} }}"
            parsed = parse_select(text)
            assert set(parsed.patterns) == set(patterns)

        check()
