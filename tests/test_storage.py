"""Unit tests for the storage substrate: pages, buffer pool, record log."""

import os

import pytest

from repro.storage.bufferpool import BufferPool
from repro.storage.pagestore import PageStore, StorageError
from repro.storage.recordfile import RecordFile


@pytest.fixture
def store(tmp_path):
    with PageStore(tmp_path / "pages.db", page_size=256) as s:
        yield s


class TestPageStore:
    def test_allocate_and_roundtrip(self, store):
        page = store.allocate()
        store.write_page(page, b"hello")
        data = store.read_page(page)
        assert data.startswith(b"hello")
        assert len(data) == 256

    def test_pages_zero_padded(self, store):
        page = store.allocate()
        assert store.read_page(page) == b"\x00" * 256

    def test_page_out_of_range(self, store):
        with pytest.raises(StorageError):
            store.read_page(0)
        page = store.allocate()
        with pytest.raises(StorageError):
            store.read_page(page + 1)

    def test_oversized_record_rejected(self, store):
        page = store.allocate()
        with pytest.raises(StorageError):
            store.write_page(page, b"x" * 257)

    def test_io_stats(self, store):
        page = store.allocate()
        store.read_page(page)
        store.read_page(page)
        assert store.stats.page_reads == 2
        assert store.stats.page_writes == 1
        store.stats.reset()
        assert store.stats.page_reads == 0

    def test_size_bytes(self, store):
        store.allocate()
        store.allocate()
        assert store.size_bytes() == 512

    def test_reopen_preserves_pages(self, tmp_path):
        path = tmp_path / "p.db"
        with PageStore(path, page_size=128) as first:
            page = first.allocate()
            first.write_page(page, b"persist")
            first.flush()
        with PageStore(path, page_size=128) as second:
            assert second.page_count == 1
            assert second.read_page(0).startswith(b"persist")

    def test_misaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            PageStore(path, page_size=256)

    def test_tiny_page_size_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            PageStore(tmp_path / "t.db", page_size=16)

    def test_closed_store_raises(self, tmp_path):
        s = PageStore(tmp_path / "c.db")
        s.close()
        with pytest.raises(StorageError):
            s.allocate()

    def test_simulated_latency_accounted(self, tmp_path):
        with PageStore(tmp_path / "slow.db", page_size=128,
                       read_latency=0.002) as slow:
            page = slow.allocate()
            slow.read_page(page)
            assert slow.stats.read_seconds >= 0.002


class TestBufferPool:
    def test_hit_after_miss(self, store):
        pool = BufferPool(store, capacity=4)
        page = store.allocate()
        pool.read_page(page)
        pool.read_page(page)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert store.stats.page_reads == 1

    def test_lru_eviction(self, store):
        pool = BufferPool(store, capacity=2)
        pages = [store.allocate() for _ in range(3)]
        for page in pages:
            pool.read_page(page)
        # page 0 was evicted; reading it is a physical read again.
        before = store.stats.page_reads
        pool.read_page(pages[0])
        assert store.stats.page_reads == before + 1

    def test_recency_refresh(self, store):
        pool = BufferPool(store, capacity=2)
        a, b, c = [store.allocate() for _ in range(3)]
        pool.read_page(a)
        pool.read_page(b)
        pool.read_page(a)      # refresh a; b is now LRU
        pool.read_page(c)      # evicts b
        before = store.stats.page_reads
        pool.read_page(a)
        assert store.stats.page_reads == before  # a still resident

    def test_clear_is_cold_cache(self, store):
        pool = BufferPool(store, capacity=4)
        page = store.allocate()
        pool.read_page(page)
        pool.clear()
        before = store.stats.page_reads
        pool.read_page(page)
        assert store.stats.page_reads == before + 1

    def test_write_through_caches(self, store):
        pool = BufferPool(store, capacity=4)
        page = store.allocate()
        pool.write_page(page, b"data")
        before = store.stats.page_reads
        assert pool.read_page(page).startswith(b"data")
        assert store.stats.page_reads == before  # cached by the write

    def test_zero_capacity_disables_cache(self, store):
        pool = BufferPool(store, capacity=0)
        page = store.allocate()
        pool.read_page(page)
        pool.read_page(page)
        assert store.stats.page_reads == 2

    def test_negative_capacity_rejected(self, store):
        with pytest.raises(ValueError):
            BufferPool(store, capacity=-1)

    def test_hit_ratio(self, store):
        pool = BufferPool(store, capacity=4)
        page = store.allocate()
        pool.read_page(page)
        pool.read_page(page)
        assert pool.stats.hit_ratio == 0.5

    def test_warm(self, store):
        pool = BufferPool(store, capacity=4)
        pages = [store.allocate() for _ in range(3)]
        pool.warm(pages)
        assert pool.resident_pages == 3


class TestRecordFile:
    def test_append_read_roundtrip(self, store):
        log = RecordFile(store)
        offsets = [log.append(f"record-{i}".encode()) for i in range(20)]
        for index, offset in enumerate(offsets):
            assert log.read(offset) == f"record-{index}".encode()

    def test_records_span_pages(self, store):
        log = RecordFile(store)
        big = b"x" * 1000  # page size is 256
        offset = log.append(big)
        assert log.read(offset) == big

    def test_empty_record(self, store):
        log = RecordFile(store)
        offset = log.append(b"")
        assert log.read(offset) == b""

    def test_scan_in_order(self, store):
        log = RecordFile(store)
        payloads = [bytes([i]) * (i + 1) for i in range(10)]
        for payload in payloads:
            log.append(payload)
        assert [payload for _off, payload in log.scan()] == payloads

    def test_reopen_after_sync(self, tmp_path):
        path = tmp_path / "log.db"
        with PageStore(path, page_size=256) as first:
            log = RecordFile(first)
            offset = log.append(b"durable")
            log.append(b"x" * 600)
            log.sync()
        with PageStore(path, page_size=256) as second:
            reopened = RecordFile(second)
            assert reopened.read(offset) == b"durable"
            assert len(list(reopened.scan())) == 2

    def test_bad_offset_rejected(self, store):
        log = RecordFile(store)
        log.append(b"one")
        with pytest.raises(StorageError):
            log.read(0)        # header page is not a record
        with pytest.raises(StorageError):
            log.read(10 ** 9)

    def test_not_a_log_rejected(self, tmp_path):
        path = tmp_path / "junk.db"
        with PageStore(path, page_size=256) as raw:
            page = raw.allocate()
            raw.write_page(page, b"JUNKJUNK")
            raw.flush()
        with PageStore(path, page_size=256) as reopened:
            with pytest.raises(StorageError):
                RecordFile(reopened)

    def test_append_while_readable(self, store):
        """Reads see staged (not yet flushed) appends."""
        log = RecordFile(store)
        offset = log.append(b"staged")
        assert log.read(offset) == b"staged"


class TestChecksums:
    def test_corruption_detected_after_reopen(self, tmp_path):
        path = tmp_path / "guarded.db"
        with PageStore(path, page_size=256) as store:
            page = store.allocate()
            store.write_page(page, b"precious data")
            store.flush()
        # Flip a byte on disk behind the store's back.
        raw = bytearray(path.read_bytes())
        raw[10] ^= 0xFF
        path.write_bytes(bytes(raw))
        with PageStore(path, page_size=256) as reopened:
            with pytest.raises(StorageError, match="checksum"):
                reopened.read_page(0)

    def test_clean_reopen_verifies(self, tmp_path):
        path = tmp_path / "clean.db"
        with PageStore(path, page_size=256) as store:
            page = store.allocate()
            store.write_page(page, b"intact")
            store.flush()
        with PageStore(path, page_size=256) as reopened:
            assert reopened.read_page(0).startswith(b"intact")

    def test_checksums_can_be_disabled(self, tmp_path):
        path = tmp_path / "yolo.db"
        with PageStore(path, page_size=256, verify_checksums=False) as store:
            page = store.allocate()
            store.write_page(page, b"data")
            store.flush()
        raw = bytearray(path.read_bytes())
        raw[1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with PageStore(path, page_size=256,
                       verify_checksums=False) as reopened:
            reopened.read_page(0)  # corruption goes unnoticed, by choice

    def test_unflushed_pages_not_yet_guarded(self, tmp_path):
        # Before the first flush no sidecar exists; reads still work.
        with PageStore(tmp_path / "fresh.db", page_size=256) as store:
            page = store.allocate()
            store.write_page(page, b"x")
            assert store.read_page(page).startswith(b"x")

    def test_corrupt_sidecar_rejected(self, tmp_path):
        path = tmp_path / "side.db"
        with PageStore(path, page_size=256) as store:
            store.allocate()
            store.flush()
        (tmp_path / "side.db.crc").write_bytes(b"odd")
        with pytest.raises(StorageError):
            PageStore(path, page_size=256)
