"""Unit tests for variable substitutions (φ)."""

import pytest

from repro.paths.substitution import (BindingConflict, EMPTY_SUBSTITUTION,
                                      Substitution)
from repro.rdf.terms import URI, Variable


A = URI("http://x/a")
B = URI("http://x/b")
V = Variable("v")
W = Variable("w")


class TestBind:
    def test_bind_returns_new(self):
        s = Substitution()
        bound = s.bind(V, A)
        assert V not in s
        assert bound[V] == A

    def test_rebind_same_value_noop(self):
        s = Substitution().bind(V, A)
        assert s.bind(V, A) is s

    def test_rebind_conflict_raises(self):
        s = Substitution().bind(V, A)
        with pytest.raises(BindingConflict) as info:
            s.bind(V, B)
        assert info.value.variable == V
        assert info.value.existing == A
        assert info.value.incoming == B


class TestMerge:
    def test_disjoint_merge(self):
        s = Substitution().bind(V, A).merge(Substitution().bind(W, B))
        assert s[V] == A and s[W] == B

    def test_overlapping_agreeing_merge(self):
        s1 = Substitution().bind(V, A)
        s2 = Substitution({V: A, W: B})
        assert s1.merge(s2)[W] == B

    def test_conflicting_merge_raises(self):
        with pytest.raises(BindingConflict):
            Substitution({V: A}).merge({V: B})

    def test_compatible_with(self):
        s = Substitution({V: A})
        assert s.compatible_with({V: A, W: B})
        assert not s.compatible_with({V: B})

    def test_merge_commutes_when_compatible(self):
        s1 = Substitution({V: A})
        s2 = Substitution({W: B})
        assert s1.merge(s2) == s2.merge(s1)


class TestMappingProtocol:
    def test_len_iter_get(self):
        s = Substitution({V: A, W: B})
        assert len(s) == 2
        assert set(s) == {V, W}
        assert s[V] == A

    def test_equality_with_dict(self):
        assert Substitution({V: A}) == {V: A}

    def test_hashable(self):
        assert hash(Substitution({V: A})) == hash(Substitution({V: A}))

    def test_apply(self):
        s = Substitution({V: A})
        assert s.apply(V) == A
        assert s.apply(W) == W       # unbound stays
        assert s.apply(B) == B       # constants pass through

    def test_empty_constant(self):
        assert len(EMPTY_SUBSTITUTION) == 0

    def test_repr_sorted(self):
        s = Substitution({W: B, V: A})
        assert repr(s).index("v=") < repr(s).index("w=")
