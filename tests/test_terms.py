"""Unit tests for the RDF term model."""

import pytest

from repro.rdf.namespaces import GOV, Namespace, RDF
from repro.rdf.terms import (BlankNode, Literal, Term, URI, Variable,
                             coerce_term)


class TestURI:
    def test_equality_by_value(self):
        assert URI("http://x/a") == URI("http://x/a")
        assert URI("http://x/a") != URI("http://x/b")

    def test_hashable_and_usable_as_dict_key(self):
        d = {URI("http://x/a"): 1}
        assert d[URI("http://x/a")] == 1

    def test_not_equal_to_literal_with_same_text(self):
        assert URI("abc") != Literal("abc")

    def test_n3(self):
        assert URI("http://x/a").n3() == "<http://x/a>"

    def test_local_name_fragment(self):
        assert URI("http://x/onto#Professor").local_name == "Professor"

    def test_local_name_path(self):
        assert URI("http://x/people/CarlaBunes").local_name == "CarlaBunes"

    def test_local_name_no_separator(self):
        assert URI("standalone").local_name == "standalone"

    def test_immutable(self):
        uri = URI("http://x/a")
        with pytest.raises(AttributeError):
            uri.value = "other"

    def test_is_constant(self):
        assert URI("http://x/a").is_constant
        assert not URI("http://x/a").is_variable


class TestLiteral:
    def test_plain_equality(self):
        assert Literal("Health Care") == Literal("Health Care")

    def test_language_distinguishes(self):
        assert Literal("chat", language="fr") != Literal("chat")
        assert Literal("chat", language="fr") != Literal("chat", language="en")

    def test_datatype_distinguishes(self):
        integer = URI("http://www.w3.org/2001/XMLSchema#integer")
        assert Literal("5", datatype=integer) != Literal("5")

    def test_language_and_datatype_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", language="en",
                    datatype=URI("http://x/dt"))

    def test_n3_plain(self):
        assert Literal("hi").n3() == '"hi"'

    def test_n3_language(self):
        assert Literal("hi", language="en").n3() == '"hi"@en'

    def test_n3_datatype(self):
        dt = URI("http://x/dt")
        assert Literal("5", datatype=dt).n3() == '"5"^^<http://x/dt>'

    def test_n3_escapes_quotes_and_newlines(self):
        assert Literal('say "hi"\n').n3() == '"say \\"hi\\"\\n"'


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?v1").value == "v1"
        assert Variable("v1") == Variable("?v1")

    def test_str_includes_question_mark(self):
        assert str(Variable("v1")) == "?v1"
        assert Variable("v1").n3() == "?v1"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("?")

    def test_is_variable(self):
        assert Variable("x").is_variable
        assert not Variable("x").is_constant


class TestBlankNode:
    def test_n3(self):
        assert BlankNode("b1").n3() == "_:b1"

    def test_distinct_from_uri(self):
        assert BlankNode("a") != URI("a")


class TestCoerceTerm:
    def test_passthrough(self):
        uri = URI("http://x/a")
        assert coerce_term(uri) is uri

    def test_variable_prefix(self):
        assert coerce_term("?v") == Variable("v")

    def test_blank_prefix(self):
        assert coerce_term("_:b") == BlankNode("b")

    def test_iri_detection(self):
        assert coerce_term("http://x/a") == URI("http://x/a")
        assert coerce_term("urn:isbn:123") == URI("urn:isbn:123")

    def test_plain_string_becomes_literal(self):
        assert coerce_term("Health Care") == Literal("Health Care")

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            coerce_term(42)

    def test_term_value_must_be_str(self):
        with pytest.raises(TypeError):
            URI(42)


class TestOrdering:
    def test_sortable_mixed_terms(self):
        terms = [Variable("z"), URI("http://b"), Literal("a"), URI("http://a")]
        ordered = sorted(terms)
        assert ordered.index(URI("http://a")) < ordered.index(URI("http://b"))


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://x/")
        assert ns.sponsor == URI("http://x/sponsor")

    def test_item_access_percent_encodes(self):
        ns = Namespace("http://x/")
        assert ns["Carla Bunes"] == URI("http://x/Carla%20Bunes")

    def test_contains(self):
        assert GOV.sponsor in GOV
        assert URI("http://other/x") not in GOV

    def test_rdf_type_wellknown(self):
        assert RDF.type.value.endswith("#type")

    def test_equality(self):
        assert Namespace("http://x/") == Namespace("http://x/")
        assert hash(Namespace("http://x/")) == hash(Namespace("http://x/"))

    def test_dunder_attribute_raises(self):
        with pytest.raises(AttributeError):
            Namespace("http://x/").__wrapped__
