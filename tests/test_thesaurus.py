"""Unit tests for the thesaurus (WordNet stand-in) and tokenizer."""

from repro.index.thesaurus import (Thesaurus, default_thesaurus, normalize,
                                   tokenize_label)
from repro.rdf.terms import Literal, URI, Variable


class TestTokenizer:
    def test_camel_case_split(self):
        assert tokenize_label(URI("http://x#FullProfessor")) == \
            ["full", "professor"]

    def test_literal_words(self):
        assert tokenize_label(Literal("Health Care")) == ["health", "care"]

    def test_punctuation_split(self):
        assert tokenize_label(Literal("graph-based_matching")) == \
            ["graph", "based", "matching"]

    def test_digits_kept(self):
        assert tokenize_label(URI("http://x/Course12")) == ["course12"]

    def test_plain_string(self):
        assert tokenize_label("QueryProcessing") == ["query", "processing"]

    def test_variable_tokenized_by_name(self):
        assert tokenize_label(Variable("v1")) == ["v1"]

    def test_acronym_boundary(self):
        assert tokenize_label("RDFGraph") == ["rdf", "graph"]


class TestThesaurus:
    def test_synonyms_symmetric(self):
        t = Thesaurus()
        t.add_synonyms(["movie", "film"])
        assert "film" in t.synonyms("movie")
        assert "movie" in t.synonyms("film")

    def test_group_merging(self):
        t = Thesaurus()
        t.add_synonyms(["a", "b"])
        t.add_synonyms(["b", "c"])
        assert t.synonyms("a") == {"b", "c"}

    def test_three_way_merge(self):
        t = Thesaurus()
        t.add_synonyms(["a", "b"])
        t.add_synonyms(["c", "d"])
        t.add_synonyms(["b", "c"])
        assert t.synonyms("a") == {"b", "c", "d"}

    def test_unknown_word_empty(self):
        assert Thesaurus().synonyms("ghost") == set()

    def test_hypernyms_directional(self):
        t = Thesaurus()
        t.add_hypernym("professor", "faculty")
        assert t.hypernyms("professor") == {"faculty"}
        assert t.hyponyms("faculty") == {"professor"}
        assert t.hypernyms("faculty") == set()

    def test_self_hypernym_ignored(self):
        t = Thesaurus()
        t.add_hypernym("x", "x")
        assert t.hypernyms("x") == set()

    def test_expand_includes_self_synonyms_hierarchy(self):
        t = Thesaurus()
        t.add_synonyms(["movie", "film"])
        t.add_hypernym("movie", "work")
        expanded = t.expand("film")
        assert {"film", "movie", "work"} <= expanded

    def test_expand_without_hierarchy(self):
        t = Thesaurus()
        t.add_synonyms(["movie", "film"])
        t.add_hypernym("movie", "work")
        assert "work" not in t.expand("film", hierarchy=False)

    def test_expand_applies_synonym_closure_to_neighbours(self):
        t = Thesaurus()
        t.add_hypernym("professor", "faculty")
        t.add_synonyms(["faculty", "staff"])
        assert "staff" in t.expand("professor")

    def test_related(self):
        t = Thesaurus()
        t.add_synonyms(["movie", "film"])
        assert t.related("movie", "film")
        assert t.related("movie", "movie")
        assert not t.related("movie", "book")

    def test_normalize(self):
        assert normalize("  Movie ") == "movie"

    def test_empty_group_noop(self):
        t = Thesaurus()
        t.add_synonyms(["solo"])
        assert len(t) == 0


class TestDefaultLexicon:
    def test_core_pairs(self):
        t = default_thesaurus()
        assert t.related("movie", "film")
        assert t.related("professor", "teacher")
        assert t.related("male", "man")
        assert t.related("bill", "act")

    def test_hierarchy_present(self):
        t = default_thesaurus()
        assert "faculty" in t.expand("professor")
        assert "person" in t.expand("student")

    def test_unrelated_words_stay_unrelated(self):
        t = default_thesaurus()
        assert not t.related("movie", "professor")
        assert not t.related("male", "female")


class TestStemming:
    def test_plural_forms(self):
        from repro.index.thesaurus import stem
        assert stem("databases") == "database"
        assert stem("queries") == "query"
        assert stem("classes") == "class"
        assert stem("boxes") == "box"
        assert stem("churches") == "church"

    def test_non_plurals_untouched(self):
        from repro.index.thesaurus import stem
        assert stem("class") == "class"   # -ss is not a plural
        assert stem("bus") == "bus"       # too short to strip
        assert stem("data") == "data"

    def test_expand_includes_stem(self):
        t = Thesaurus()
        assert "database" in t.expand("databases")

    def test_expand_applies_synonyms_of_stem(self):
        t = Thesaurus()
        t.add_synonyms(["movie", "film"])
        assert "film" in t.expand("movies")
