"""Unit tests for the timing helpers and the report renderers."""

import pytest

from repro.evaluation.reporting import (format_bytes, format_seconds,
                                        format_table, log_bar_chart,
                                        xy_series)
from repro.evaluation.scalability import SweepPoint, quadratic_fit
from repro.evaluation.timing import (TimingSample, time_callable, time_cold,
                                     time_warm)


class TestTimeCallable:
    def test_runs_counted(self):
        calls = []
        sample = time_callable(lambda: calls.append(1), runs=5)
        assert len(calls) == 5
        assert len(sample.runs) == 5

    def test_before_each_outside_timing(self):
        hooks = []
        time_callable(lambda: None, runs=3, before_each=lambda: hooks.append(1))
        assert len(hooks) == 3

    def test_invalid_runs(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, runs=0)

    def test_sample_statistics(self):
        sample = TimingSample((1.0, 2.0, 3.0))
        assert sample.mean_ms == 2.0
        assert sample.median_ms == 2.0
        assert sample.min_ms == 1.0
        assert sample.stdev_ms > 0
        assert "ms" in str(sample)

    def test_single_run_stdev_zero(self):
        assert TimingSample((1.0,)).stdev_ms == 0.0


class TestColdWarm:
    def test_cold_slower_or_equal_reads(self, govtrack_engine, q1):
        cold = time_cold(govtrack_engine, q1, k=3, runs=2)
        warm = time_warm(govtrack_engine, q1, k=3, runs=2)
        assert cold.mean_ms > 0
        assert warm.mean_ms > 0


class TestQuadraticFit:
    def test_recovers_exact_coefficients(self):
        fit = quadratic_fit([SweepPoint(x, 2 * x * x - 3 * x + 5)
                             for x in (1.0, 2.0, 3.0, 4.0, 5.0)])
        assert fit.a == pytest.approx(2.0)
        assert fit.b == pytest.approx(-3.0)
        assert fit.c == pytest.approx(5.0)

    def test_equation_renders(self):
        fit = quadratic_fit([SweepPoint(x, x * x) for x in (1, 2, 3)])
        assert fit.equation().startswith("y = ")

    def test_callable(self):
        fit = quadratic_fit([SweepPoint(x, x * x) for x in (1, 2, 3)])
        assert fit(4.0) == pytest.approx(16.0)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            quadratic_fit([SweepPoint(1, 1), SweepPoint(2, 4)])

    def test_degenerate_x_rejected(self):
        with pytest.raises(ValueError):
            quadratic_fit([SweepPoint(1, 1)] * 5)


class TestRenderers:
    def test_format_table_aligns(self):
        table = format_table(["name", "value"],
                             [["alpha", 1], ["b", 22222]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "alpha" in table
        assert "22,222" in table or "22222" in table

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(56 * 1024 * 1024) == "56.0 MB"
        assert "GB" in format_bytes(23 * 1024 ** 3)

    def test_format_seconds(self):
        assert format_seconds(1.0) == "1.00 sec"
        assert format_seconds(47 * 60) == "47 min"

    def test_log_bar_chart(self):
        chart = log_bar_chart(["Q1", "Q2"],
                              {"sama": [1.0, 10.0], "dogma": [100.0, 1000.0]},
                              title="Fig")
        assert "Q1" in chart
        assert "sama" in chart
        assert "#" in chart

    def test_log_bar_chart_empty(self):
        assert "(no data)" in log_bar_chart(["Q1"], {"sama": [0.0]})

    def test_xy_series(self):
        text = xy_series([SweepPoint(1.0, 2.0)], "x", "y", title="S",
                         fit_equation="y = x")
        assert "trendline" in text
