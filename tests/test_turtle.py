"""Unit tests for the Turtle-subset reader."""

import pytest

from repro.rdf import turtle
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal, URI
from repro.rdf.turtle import TurtleSyntaxError


DOC = """
@prefix ex: <http://x/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

ex:alice a ex:Person ;
    ex:knows ex:bob, ex:carol ;
    ex:name "Alice" .

ex:bob ex:age 42 .
"""


class TestParse:
    def test_counts(self):
        triples = list(turtle.parse(DOC))
        assert len(triples) == 5

    def test_a_keyword(self):
        triples = list(turtle.parse(DOC))
        assert triples[0].predicate == RDF.type

    def test_comma_fanout(self):
        triples = list(turtle.parse(DOC))
        knows = [t for t in triples if t.predicate == URI("http://x/knows")]
        assert {t.object for t in knows} == {URI("http://x/bob"),
                                             URI("http://x/carol")}

    def test_number_literal(self):
        triples = list(turtle.parse(DOC))
        age = next(t for t in triples if t.predicate == URI("http://x/age"))
        assert age.object.value == "42"

    def test_prefix_keyword_case(self):
        triples = list(turtle.parse(
            'PREFIX ex: <http://x/>\nex:a ex:p "v" .'))
        assert triples[0].object == Literal("v")

    def test_base_resolution(self):
        triples = list(turtle.parse(
            '@base <http://x/> .\n<a> <p> <b> .'))
        assert triples[0].subject == URI("http://x/a")

    def test_language_and_datatype(self):
        triples = list(turtle.parse(
            '@prefix ex: <http://x/> .\n'
            'ex:a ex:p "chat"@fr .\n'
            'ex:a ex:q "5"^^<http://x/int> .'))
        assert triples[0].object.language == "fr"
        assert triples[1].object.datatype == URI("http://x/int")

    def test_anonymous_blank(self):
        triples = list(turtle.parse(
            '@prefix ex: <http://x/> .\nex:a ex:p [] .'))
        from repro.rdf.terms import BlankNode
        assert isinstance(triples[0].object, BlankNode)

    def test_file(self, tmp_path):
        path = tmp_path / "doc.ttl"
        path.write_text(DOC)
        assert len(list(turtle.parse_file(path))) == 5


class TestErrors:
    def test_undeclared_prefix(self):
        with pytest.raises(TurtleSyntaxError):
            list(turtle.parse("ex:a ex:p ex:b ."))

    def test_collections_unsupported(self):
        with pytest.raises(TurtleSyntaxError):
            list(turtle.parse(
                '@prefix ex: <http://x/> .\nex:a ex:p (1 2) .'))

    def test_nested_bnode_unsupported(self):
        with pytest.raises(TurtleSyntaxError):
            list(turtle.parse(
                '@prefix ex: <http://x/> .\n'
                'ex:a ex:p [ ex:q "v" ] .'))

    def test_missing_dot(self):
        with pytest.raises(TurtleSyntaxError):
            list(turtle.parse('@prefix ex: <http://x/> .\nex:a ex:p ex:b'))


class TestSerialize:
    def test_roundtrip(self, tmp_path):
        triples = list(turtle.parse(DOC))
        text = turtle.serialize(triples)
        again = list(turtle.parse(text))
        assert set(again) == set(triples)

    def test_prefix_compaction(self):
        triples = list(turtle.parse(DOC))
        text = turtle.serialize(triples, prefixes={"ex": "http://x/"})
        assert "ex:alice" in text
        assert "@prefix ex:" in text

    def test_derived_prefixes(self):
        triples = list(turtle.parse(DOC))
        text = turtle.serialize(triples)
        assert "@prefix ns1:" in text

    def test_subject_grouping(self):
        triples = list(turtle.parse(DOC))
        text = turtle.serialize(triples, prefixes={"ex": "http://x/"})
        # alice's four triples share one subject block ( ';' separated ).
        assert text.count("ex:alice") == 1

    def test_literals_escaped(self):
        from repro.rdf.triples import Triple
        from repro.rdf.terms import Literal, URI
        tricky = [Triple(URI("http://x/a"), URI("http://x/p"),
                         Literal('quote " and newline\n'))]
        again = list(turtle.parse(turtle.serialize(tricky)))
        assert again == tricky

    def test_write_file_roundtrip(self, tmp_path):
        triples = list(turtle.parse(DOC))
        path = tmp_path / "out.ttl"
        count = turtle.write_file(triples, path)
        assert count == 5
        assert set(turtle.parse_file(path)) == set(triples)

    def test_govtrack_roundtrip(self, govtrack):
        text = turtle.serialize(govtrack.triples())
        again = set(turtle.parse(text))
        assert again == set(govtrack.triples())
