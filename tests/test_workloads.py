"""Cross-dataset workloads: every dataset's queries parse and answer.

Also exercises the §6.3 claim beyond LUBM: "In any dataset, for all
queries we obtained RR=1".
"""

import pytest

from repro.datasets import dataset, workload, workload_datasets
from repro.engine import SamaEngine
from repro.evaluation.ground_truth import RelevanceOracle
from repro.evaluation.metrics import reciprocal_rank


class TestWorkloadShapes:
    def test_every_workload_dataset_has_queries(self):
        for name in workload_datasets():
            specs = workload(name)
            assert len(specs) >= 5, name

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            workload("pblog")

    def test_all_queries_parse(self):
        for name in workload_datasets():
            for spec in workload(name):
                assert spec.graph.node_count() >= 2, spec.qid
                assert spec.variable_count >= 1, spec.qid

    def test_lubm_workload_is_the_twelve(self):
        assert len(workload("LUBM")) == 12


@pytest.mark.parametrize("name", ["gov", "imdb", "dblp", "berlin", "kegg"])
class TestCrossDatasetAnswering:
    @pytest.fixture
    def engine(self, name, tmp_path):
        graph = dataset(name).build(1200, seed=5)
        engine = SamaEngine.from_graph(graph,
                                       directory=str(tmp_path / name))
        engine._graph = graph
        yield engine
        engine.close()

    def test_every_query_returns_answers(self, name, engine):
        for spec in workload(name):
            answers = engine.query(spec.graph, k=5)
            assert answers, f"{name}/{spec.qid} returned nothing"
            scores = [a.score for a in answers]
            assert scores == sorted(scores), f"{name}/{spec.qid}"

    def test_rr_is_one_where_truth_exists(self, name, engine):
        oracle = RelevanceOracle(engine._graph)
        judged = 0
        for spec in workload(name)[:3]:
            truth = oracle.ground_truth(spec.graph, key=spec.qid)
            if truth.is_empty:
                continue
            answers = engine.query(spec.graph, k=10)
            flags = [oracle.judge_sama_answer(truth, a) for a in answers]
            assert reciprocal_rank(flags) == 1.0, f"{name}/{spec.qid}"
            judged += 1
        assert judged >= 1, f"no judgeable queries for {name}"
