"""Doc-drift gate: every documented ``sama ...`` command must parse.

Scans the prose docs for CLI examples — both fenced code blocks and
inline code spans — and validates each against the real argparse tree
from ``repro.cli.build_parser()``:

- the subcommand (and ``index`` verb) must exist;
- every ``--flag``/``-x`` must be an option of that subcommand;
- the legacy positional form ``sama index DATA DIR`` is flagged: the
  runtime keeps it working through a compatibility shim, but docs must
  show the current ``sama index build`` spelling;
- coverage runs in reverse too: every parser subcommand and every
  ``index`` verb must appear in at least one documented example, so a
  new verb (``sketch``, say) cannot ship undocumented.

Two structural checks ride along:

- every package and top-level module under ``src/repro/`` must be
  mentioned (as ``repro.<name>``) in ``docs/ARCHITECTURE.md``, so a
  new subsystem cannot ship without a place on the map;
- every relative markdown link in the prose docs must resolve — the
  target file must exist, and a ``#fragment`` must name a real heading
  in the target (GitHub-style slugs).

Placeholders are tolerated: ``...``/``…`` tokens, ALL-CAPS words like
``DIR``, and quoted SPARQL strings are not validated.  Run from the
repo root (CI's ``docs`` job does)::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import argparse
import re
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DOC_FILES = ["README.md", "EXPERIMENTS.md", "DESIGN.md",
             "docs/OPERATIONS.md", "docs/ARCHITECTURE.md",
             "docs/retrieval.md", "docs/serving.md",
             "docs/resilience.md"]

#: The file that must mention every ``src/repro/*`` package.
ARCHITECTURE_DOC = "docs/ARCHITECTURE.md"

#: Tokens that stand in for user-supplied values, not literal syntax.
_PLACEHOLDER = re.compile(r"^(\.\.\.|…|[A-Z][A-Z0-9_-]*)$")


def extract_commands(text: str) -> "list[tuple[int, str]]":
    """All ``sama ...`` example commands with their line numbers."""
    commands = []
    # Fenced code blocks: any line whose first word is `sama`, honouring
    # trailing-backslash continuations.
    in_fence = False
    pending = None  # (lineno, partial command)
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            pending = None
            continue
        if not in_fence:
            continue
        if pending is not None:
            start, partial = pending
            joined = partial + " " + stripped.rstrip("\\").strip()
            if stripped.endswith("\\"):
                pending = (start, joined)
            else:
                commands.append((start, joined))
                pending = None
            continue
        if stripped.startswith("$ "):
            stripped = stripped[2:]
        if re.match(r"^sama\s", stripped):
            body = stripped.rstrip("\\").strip()
            if stripped.endswith("\\"):
                pending = (lineno, body)
            else:
                commands.append((lineno, body))
    # Inline code spans: `sama serve DIR` and friends (may wrap lines).
    for match in re.finditer(r"`(sama\s[^`]+)`", text):
        lineno = text.count("\n", 0, match.start()) + 1
        commands.append((lineno, " ".join(match.group(1).split())))
    return commands


def _subparser_map(parser: argparse.ArgumentParser) -> dict:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def _options_of(parser: argparse.ArgumentParser) -> "set[str]":
    return {option for action in parser._actions
            for option in action.option_strings}


def check_command(command: str, toplevel: dict) -> "list[str]":
    """Validate one documented command; returns human-readable errors."""
    # Inline comments in shell examples are not part of the command.
    command = command.split("  #")[0].strip()
    try:
        tokens = shlex.split(command)
    except ValueError as exc:
        return [f"unparseable shell syntax: {exc}"]
    tokens = tokens[1:]  # drop "sama"
    if not tokens:
        return []
    name = tokens[0]
    if name not in toplevel:
        return [f"unknown subcommand {name!r} (have: "
                f"{', '.join(sorted(toplevel))})"]
    parser = toplevel[name]
    tokens = tokens[1:]
    verbs = _subparser_map(parser)
    if verbs:
        if not tokens:
            return [f"'sama {name}' needs a verb "
                    f"({', '.join(sorted(verbs))})"]
        if tokens[0] in verbs:
            parser = verbs[tokens[0]]
            tokens = tokens[1:]
        elif not tokens[0].startswith("-") \
                and not _PLACEHOLDER.match(tokens[0]):
            return [f"legacy 'sama {name} {tokens[0]} ...' form — "
                    f"document 'sama {name} build' instead"]
        elif _PLACEHOLDER.match(tokens[0]):
            # `sama index VERB ...` style placeholder: nothing to check.
            return []
        else:
            parser = None  # flags on the bare group: fall through
    errors = []
    if parser is not None:
        options = _options_of(parser)
        for token in tokens:
            if not token.startswith("-"):
                continue
            flag = token.split("=")[0]
            if _PLACEHOLDER.match(flag.lstrip("-")) and flag.startswith("--"):
                continue
            if flag not in options:
                errors.append(f"flag {flag!r} is not accepted by "
                              f"'sama {name}'")
    return errors


def documented_names(command: str) -> "tuple[str, str] | None":
    """``(subcommand, verb)`` named by one example; verb ``""`` if none."""
    try:
        tokens = shlex.split(command.split("  #")[0].strip())
    except ValueError:
        return None
    tokens = tokens[1:]  # drop "sama"
    if not tokens:
        return None
    name = tokens[0]
    verb = ""
    if len(tokens) > 1 and not tokens[1].startswith("-") \
            and not _PLACEHOLDER.match(tokens[1]):
        verb = tokens[1]
    return (name, verb)


def coverage_gaps(toplevel: dict, seen: "set[tuple[str, str]]") \
        -> "list[str]":
    """Parser subcommands/verbs no doc example mentions.

    The forward direction (every example parses) catches docs going
    stale; this direction catches a new subcommand or ``index`` verb
    shipping without a single documented example.
    """
    gaps = []
    named = {name for name, _ in seen}
    for name, parser in sorted(toplevel.items()):
        if name not in named:
            gaps.append(f"subcommand 'sama {name}' has no documented "
                        "example")
            continue
        for verb in sorted(_subparser_map(parser)):
            if (name, verb) not in seen:
                gaps.append(f"verb 'sama {name} {verb}' has no "
                            "documented example")
    return gaps


def package_gaps() -> "list[str]":
    """``src/repro/*`` packages/modules missing from ARCHITECTURE_DOC.

    The subsystem map must be complete: a new package that ships
    without a ``repro.<name>`` mention on the map fails the docs job.
    """
    arch = REPO_ROOT / ARCHITECTURE_DOC
    text = arch.read_text() if arch.exists() else ""
    gaps = []
    for child in sorted((REPO_ROOT / "src" / "repro").iterdir()):
        if child.name.startswith(("_", ".")):
            continue
        if child.is_dir() and (child / "__init__.py").exists():
            name = child.name
        elif child.suffix == ".py":
            name = child.stem
        else:
            continue
        if f"repro.{name}" not in text:
            gaps.append(f"package 'repro.{name}' is not mentioned in "
                        f"{ARCHITECTURE_DOC}")
    return gaps


#: ``[text](target)`` / ``[text](target#fragment)`` markdown links.
_MD_LINK = re.compile(r"\[[^\]^\n]*\]\(([^)#\s]*)(#[^)\s]*)?\)")


def _heading_slug(heading: str) -> str:
    """GitHub-style anchor slug for one markdown heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _heading_slugs(path: Path) -> "set[str]":
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and re.match(r"^#{1,6}\s", line):
            slugs.add(_heading_slug(line.lstrip("#")))
    return slugs


def link_gaps() -> "list[str]":
    """Relative markdown links in DOC_FILES that do not resolve."""
    gaps = []
    for relative in DOC_FILES:
        path = REPO_ROOT / relative
        if not path.exists():
            continue  # reported by main() already
        text = path.read_text()
        for match in _MD_LINK.finditer(text):
            target, fragment = match.group(1), match.group(2)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            lineno = text.count("\n", 0, match.start()) + 1
            dest = path if not target else (path.parent / target)
            if not dest.exists():
                gaps.append(f"{relative}:{lineno}: broken link "
                            f"({target!r} does not exist)")
                continue
            if fragment and dest.suffix == ".md":
                if fragment[1:].lower() not in _heading_slugs(dest):
                    gaps.append(f"{relative}:{lineno}: link anchor "
                                f"{fragment!r} names no heading in "
                                f"{target or relative!r}")
    return gaps


def main() -> int:
    from repro.cli import build_parser

    toplevel = _subparser_map(build_parser())
    failures = 0
    checked = 0
    seen = set()
    for relative in DOC_FILES:
        path = REPO_ROOT / relative
        if not path.exists():
            print(f"check-docs: FAIL {relative}: file missing")
            failures += 1
            continue
        for lineno, command in extract_commands(path.read_text()):
            checked += 1
            names = documented_names(command)
            if names is not None:
                seen.add(names)
            for error in check_command(command, toplevel):
                print(f"check-docs: FAIL {relative}:{lineno}: "
                      f"{command!r}: {error}")
                failures += 1
    for gap in coverage_gaps(toplevel, seen):
        print(f"check-docs: FAIL coverage: {gap}")
        failures += 1
    for gap in package_gaps():
        print(f"check-docs: FAIL coverage: {gap}")
        failures += 1
    for gap in link_gaps():
        print(f"check-docs: FAIL link: {gap}")
        failures += 1
    print(f"check-docs: {checked} documented sama command(s) checked, "
          f"{failures} problem(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
